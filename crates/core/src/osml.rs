use crate::admission::{OverloadState, QueuedEntry, ShaveRecord, ShedEntry};
use crate::apptable::AppTable;
use crate::config::OverloadConfig;
use crate::event_queue::{TimerEvent, TimerQueue};
use crate::golden::{
    Decision, EventBody, ReplayState, TelemetryNote, UnifiedEvent, UnifiedLog, WorldFact,
};
use crate::layout::{free_way_run_after_repack, repack_ways_with_last};
use crate::recovery::{
    AppSnapshot, RecoveryMode, RecoveryReport, RecoveryStore, SchedulerSnapshot,
};
use crate::resilience::Retrying;
use crate::{EventKind, EventLog, OsmlConfig};
use osml_ml::Matrix;
use osml_models::features::{
    write_base_features, write_model_b_input, write_model_b_prime_input, write_model_c_state,
    BASE_FEATURES, MODEL_B_INPUTS, MODEL_B_PRIME_INPUTS, MODEL_C_STATE,
};
use osml_models::{
    best_action_from_q, Action, BPoints, ModelA, ModelB, ModelBPrime, ModelC, OaaPrediction,
};
use osml_platform::{
    Allocation, AppId, CoreSet, CounterSample, LatencyStats, MbaThrottle, Placement, RejectReason,
    Scheduler, SloClass, Substrate, WayMask,
};
use osml_telemetry::{ActionKind, AllocSnapshot, Provenance, Telemetry, TraceOp, TraceRecord};
use osml_workloads::oaa::AllocPoint;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ticks Algorithm 3 waits after a rollback before reclaiming again.
const RECLAIM_COOLDOWN_TICKS: u64 = 10;

/// Ticks a withdrawn (ineffective) growth action stays blocked for an app,
/// steering Model-C to its next-best action instead of repeating the same
/// fruitless one.
const BLOCKED_ACTION_TICKS: u64 = 15;

/// A growth action is "effective" if it cut latency to at most this factor
/// of the previous sample. Resource effects at the cliff are large, while
/// trace noise is a few percent; demanding 10 % separates the two.
const GROWTH_IMPROVEMENT_FACTOR: f64 = 0.90;

/// The controller acts when p95 exceeds this fraction of the QoS target,
/// keeping headroom so trace noise around the exact boundary does not cause
/// perpetual churn.
const QOS_GUARD: f64 = 0.95;

/// Fleet size below which the event engine skips the batched inference
/// pre-passes and lets the per-service loop use its (bit-identical) scalar
/// paths. Below this point the gather/reset/decode overhead of a fused
/// forward pass exceeds the matmul savings — the small-fleet regression the
/// 10-service bench point exposed — while the timer wheel and dirty-set
/// memo still apply.
const BATCH_FLEET_MIN: usize = 32;

/// Whether the controller considers a service in violation (with guard
/// headroom; see [`QOS_GUARD`]).
fn guarded_violation(lat: &osml_platform::LatencyStats) -> bool {
    lat.p95_ms > QOS_GUARD * lat.qos_target_ms
}

/// The trained model suite OSML schedules with.
#[derive(Debug, Clone)]
pub struct Models {
    /// Model-A: OAA/RCliff prediction.
    pub model_a: ModelA,
    /// Model-B: B-point (deprivable resources) prediction.
    pub model_b: ModelB,
    /// Model-B′: slowdown pricing for deprivation/sharing.
    pub model_b_prime: ModelBPrime,
    /// Model-C: online DQN adjustments.
    pub model_c: ModelC,
}

/// Per-service controller state.
#[derive(Debug, Clone)]
struct AppRecord {
    prediction: OaaPrediction,
    /// An action whose effect is awaiting the next sample (for Model-C's
    /// `<Status, Action, Reward, Status'>` tuple and for rollback).
    pending: Option<Pending>,
    /// Absolute tick before which Algorithm 3 must not reclaim again after
    /// a rollback (prevents reclaim/violate/rollback livelock). `0` means no
    /// cooldown was ever armed; the cooldown is active while
    /// `tick < cooldown_until`. The deadline itself is authoritative — the
    /// timer wheel (event mode) and the GC walk (scan mode) only tidy it up.
    cooldown_until: u64,
    /// Withdrawn growth actions, each with the absolute tick its quarantine
    /// runs until (active while `tick < until`).
    blocked: Vec<(Action, u64)>,
    /// A proven minimal allocation: a reclaim below this broke QoS, so
    /// Algorithm 3 stays quiet while the holding is at or below it and the
    /// workload looks unchanged. `(cores, ways, cpu_usage at proof time)`.
    reclaim_floor: Option<(usize, usize, f64)>,
    /// Whether a migration request is already outstanding (dedupes the
    /// report to the upper scheduler while the situation persists).
    migration_requested: bool,
    /// Consecutive ticks the service has been in (guarded) violation.
    violation_ticks: usize,
    /// Last valid counter window: dropped/corrupt samples degrade to this
    /// so the models never ingest NaN or a missing window.
    last_good: Option<CounterSample>,
    /// Watchdog strikes: consecutive failed (or, while the platform is
    /// unhealthy, ineffective) ML actions on this service.
    failed_ml_actions: u32,
    /// Whether the ML path is quarantined and the heuristic fallback is
    /// driving the service.
    fallback: bool,
    /// Consecutive healthy ticks accumulated toward leaving fallback.
    fallback_ok_ticks: u32,
    /// SLO class the service was admitted with (drives overload policy:
    /// queue priority, brownout shave ceiling, shed eligibility).
    class: SloClass,
    /// Dirty-set probe memo (event mode only; always `None` in scan mode).
    /// Holds the exact observation triple the last *quiescent* probe ran on.
    /// While a service's counters, latency and layout are all unchanged, the
    /// full probe body is a provable no-op — the Model-A refresh would
    /// recompute the identical prediction and Algorithm 3 would take the
    /// identical early return — so the tick loop skips it. Any mismatch (or
    /// any action, violation, fallback or timer activity) drops the memo and
    /// the service is probed in full. Not serialized: a recovered scheduler
    /// re-probes everything.
    probe_memo: Option<ProbeMemo>,
}

/// The observation triple a quiescent probe is keyed on (see
/// [`AppRecord::probe_memo`]).
#[derive(Debug, Clone, PartialEq)]
struct ProbeMemo {
    sample: CounterSample,
    lat: LatencyStats,
    alloc: Allocation,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    /// Algorithm 2 growth: withdrawn if it did not improve latency while
    /// the service still violates (resources were wasted).
    Growth,
    /// Algorithm 3 reclamation: withdrawn if QoS broke (paper, Alg. 3
    /// line 8).
    Reclaim,
}

#[derive(Debug, Clone)]
struct Pending {
    before: CounterSample,
    action: Action,
    kind: PendingKind,
    /// Allocation to restore if the action is withdrawn.
    rollback: Allocation,
}

/// The OSML scheduler: profiling module + central controller (Fig. 8/9).
///
/// Drive it through the [`Scheduler`] trait: call
/// [`Scheduler::on_arrival`] after launching a service and
/// [`Scheduler::tick`] once per simulated second.
#[derive(Debug, Clone)]
pub struct OsmlScheduler {
    config: OsmlConfig,
    models: Models,
    records: AppTable<AppRecord>,
    log: EventLog,
    actions: usize,
    /// Timer wheel of the event-driven core (kept empty in scan mode):
    /// cooldown expiries, blocked-action expiries and admission-queue
    /// deadlines pop here instead of being found by per-record scans.
    timers: TimerQueue,
    /// Reusable gather/activation buffers for the batched inference paths
    /// and the per-tick timer drain (allocation-free steady state). Never
    /// observable: every user clears or overwrites before reading.
    scratch: BatchScratch,
    /// Model forward passes run in service of scheduling decisions
    /// (Model-A/B/B′ predictions, Model-C action selections). Interior
    /// mutability because the pricing helper takes `&self`. Diagnostic
    /// only — not serialized.
    decisions: DecisionCounter,
    /// Simulated time of the most recent observed platform fault, feeding
    /// the watchdog's "platform unhealthy" attention window.
    last_fault_s: Option<f64>,
    /// Cumulative count of persistent (budget-exhausted) actuation
    /// failures; transactions compare before/after to decide rollback.
    persistent_failures: u32,
    /// Transaction nesting depth: only the outermost [`Self::transact`]
    /// snapshots and rolls back.
    txn_depth: u32,
    /// Ticks executed so far (stamps trace records).
    ticks: u64,
    /// Observability pipeline; disabled (free) unless explicitly attached.
    telemetry: Telemetry,
    /// Overload management: admission queue, shed stack, brownout ledger.
    /// Inert (and cost-free) while `config.overload` is disabled.
    overload: OverloadState,
    /// The golden-thread unified event log: world facts, system decisions
    /// and operational telemetry as one typed, replayable stream. Every
    /// state-mutating site emits here (pinned by the emission-site audit
    /// test); write-only, so decisions are identical with or without it.
    unified: UnifiedLog,
}

///// Reusable buffers for the event-driven engine: the row-major feature
/// gather, ping-pong activation scratch, decoded batch outputs, the
/// per-tick Model-A prediction table, and the queue-deadline buffer.
#[derive(Debug, Clone)]
struct BatchScratch {
    /// Row-major gathered feature rows for one fused forward pass.
    inputs: Matrix,
    /// Ping-pong activation scratch shared by every batched call.
    s1: Matrix,
    /// Second half of the ping-pong pair.
    s2: Matrix,
    /// `ids` positions gathered by the Model-A pre-pass (row `i` of
    /// `inputs` belongs to the service at position `rows[i]`).
    rows: Vec<usize>,
    /// Samples gathered by the Model-A pre-pass, row-aligned with `rows`.
    samples: Vec<CounterSample>,
    /// Decoded Model-A predictions, row-aligned with `rows`.
    preds: Vec<OaaPrediction>,
    /// Per-position Model-A predictions for the current tick, paired with
    /// the sample each was computed from. The service loop `take()`s them
    /// at its refresh site and uses the batched result only when the
    /// service's live sample still equals the gathered one — actions on
    /// earlier services this tick (rollbacks, deprivations) mutate the
    /// layout, and a service whose counters moved must be re-predicted
    /// scalar to stay bit-identical with the scan loop.
    pred_by_pos: Vec<Option<(OaaPrediction, CounterSample)>>,
    /// Decoded Model-B batch outputs.
    b_points: Vec<BPoints>,
    /// Decoded Model-B′ batch prices.
    prices: Vec<f64>,
    /// Queue-deadline tickets popped at tick start, handled inside
    /// `overload_control` — the same tick position the scan-based loop
    /// expires them at (the queue is only mutated between ticks and there,
    /// so deferring the events is safe).
    due_queue_deadlines: Vec<u64>,
    /// Model-C gather selection: `(gather_row, ids_position)` pairs for the
    /// services whose probe may consult Model-C this tick.
    c_rows: Vec<(usize, usize)>,
    /// Batched Model-C Q-rows, *owned* (not the ping-pong scratch): the
    /// per-service loop reads cached rows while Algorithm 4's Model-B′ batch
    /// reuses `inputs`/`s1`/`s2` mid-loop.
    c_q: Matrix,
    /// Per-position Model-C cache: `(row in c_q, sample the row was computed
    /// from)`. A consult site uses the row only when the service's live
    /// sample still equals the gathered one *and* the policy weights have
    /// not changed since the gather (`c_revision`); otherwise it falls back
    /// to the scalar path, which is bit-identical by construction.
    c_by_pos: Vec<Option<(usize, CounterSample)>>,
    /// `ModelC::revision` at gather time.
    c_revision: u64,
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch {
            inputs: Matrix::zeros(0, 0),
            s1: Matrix::zeros(0, 0),
            s2: Matrix::zeros(0, 0),
            rows: Vec::new(),
            samples: Vec::new(),
            preds: Vec::new(),
            pred_by_pos: Vec::new(),
            b_points: Vec::new(),
            prices: Vec::new(),
            due_queue_deadlines: Vec::new(),
            c_rows: Vec::new(),
            c_q: Matrix::zeros(0, 0),
            c_by_pos: Vec::new(),
            c_revision: 0,
        }
    }
}

/// A relaxed atomic decision counter. Atomic (not `Cell`) so the scheduler
/// stays `Sync`; cloning snapshots the current count.
#[derive(Debug, Default)]
struct DecisionCounter(AtomicU64);

impl Clone for DecisionCounter {
    fn clone(&self) -> Self {
        DecisionCounter(AtomicU64::new(self.get()))
    }
}

impl DecisionCounter {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-victim context gathered by the event-mode deprivation loop before the
/// fused Model-B forward: everything the offer clamp needs besides the
/// B-points themselves.
struct VictimCtx {
    victim: AppId,
    vs: CounterSample,
    cores: usize,
    ways: usize,
    floor: (usize, usize),
    wide_slack: bool,
}

impl OsmlScheduler {
    /// Creates a scheduler from trained models.
    pub fn new(models: Models, config: OsmlConfig) -> Self {
        OsmlScheduler {
            config,
            models,
            records: AppTable::new(),
            log: EventLog::new(),
            actions: 0,
            timers: TimerQueue::default(),
            scratch: BatchScratch::default(),
            decisions: DecisionCounter::default(),
            last_fault_s: None,
            persistent_failures: 0,
            txn_depth: 0,
            ticks: 0,
            telemetry: Telemetry::disabled(),
            overload: OverloadState::default(),
            unified: UnifiedLog::new(),
        }
    }

    /// Attaches an observability pipeline (builder-style). The default is
    /// [`Telemetry::disabled`], which costs nothing; an enabled pipeline is
    /// write-only, so decisions are identical either way.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches (or replaces) the observability pipeline in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached observability pipeline.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the configuration (builder-style; used by the ablation
    /// studies to vary one knob at a time on an already-trained scheduler).
    /// Rebuilds the timer wheel, so switching the tick engine mid-run is
    /// safe in either direction.
    pub fn with_config(mut self, config: OsmlConfig) -> Self {
        self.config = config;
        self.rebuild_timers();
        self
    }

    /// The decision log (Fig. 13/16 source data).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The golden-thread unified event log (world facts + decisions +
    /// telemetry), sufficient for deterministic full-state replay.
    pub fn unified_log(&self) -> &UnifiedLog {
        &self.unified
    }

    /// Records a layer-1 world fact on behalf of the driving harness
    /// (launches, removals, load changes, scripted arrivals coming due,
    /// injected faults). The scheduler itself only emits `TickElapsed`
    /// and `ControllerCrashed`; everything else about the world is the
    /// harness's to report.
    pub fn record_world(&mut self, time_s: f64, app: Option<AppId>, fact: WorldFact) {
        self.unified.push(self.ticks, time_s, app.map(|a| a.0), EventBody::World(fact));
    }

    /// Attaches a durable journal file to the unified log: every event is
    /// appended and flushed as it is pushed, giving the torn-tail-tolerant
    /// write-ahead stream crash recovery replays from.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn attach_unified_journal(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        self.unified.attach_journal(path)
    }

    /// Captures this scheduler's live state in [`ReplayState`] form (the
    /// substrate supplies the authoritative layouts), for bit-identity
    /// comparison against [`crate::golden::replay`] of the unified log.
    pub fn live_replay_state<S: Substrate>(&self, server: &S) -> ReplayState {
        let mut layouts = BTreeMap::new();
        for id in server.apps() {
            if let Some(alloc) = server.allocation(id) {
                layouts.insert(id.0, alloc);
            }
        }
        ReplayState {
            tick: self.ticks,
            actions: self.actions,
            layouts,
            queue: self.overload.queue.clone(),
            shed: self.overload.shed.clone(),
            shaved: self.overload.shaved.clone(),
            brownout_since: self.overload.brownout_since,
        }
    }

    /// Emits one layer-2 decision into the unified log.
    fn decide(&mut self, time_s: f64, app: Option<AppId>, decision: Decision) {
        self.unified.push(self.ticks, time_s, app.map(|a| a.0), EventBody::Decision(decision));
    }

    /// Emits a decision at the last seen timestamp (for sites with no
    /// clock in scope, e.g. ticket cancellation from the driver).
    fn decide_untimed(&mut self, app: Option<AppId>, decision: Decision) {
        self.unified.push_untimed(self.ticks, app.map(|a| a.0), EventBody::Decision(decision));
    }

    /// Emits one layer-3 operational-telemetry note (excluded from replay).
    fn note(&mut self, time_s: f64, app: Option<AppId>, note: TelemetryNote) {
        self.unified.push(self.ticks, time_s, app.map(|a| a.0), EventBody::Telemetry(note));
    }

    /// Logs every neighbour move a repack applied as a layer-2 decision
    /// (repacks bypass [`Self::apply`], so they need their own emission).
    fn note_repack(&mut self, now: f64, moves: &[(AppId, Allocation, Allocation)]) {
        for &(id, pre, post) in moves {
            self.decide(
                now,
                Some(id),
                Decision::Alloc {
                    kind: ActionKind::Repack,
                    provenance: Provenance::Controller,
                    pre: Some(pre),
                    post,
                    counts_as_action: false,
                },
            );
        }
    }

    /// Model-A's stored prediction for a service, if it was profiled.
    pub fn prediction(&self, id: AppId) -> Option<OaaPrediction> {
        self.records.get(&id).map(|r| r.prediction)
    }

    /// The model suite (e.g. to checkpoint Model-C for a warm restart).
    pub fn models(&self) -> &Models {
        &self.models
    }

    /// Mutable access to the model suite (e.g. to persist Model-C's online
    /// learning progress).
    pub fn models_mut(&mut self) -> &mut Models {
        &mut self.models
    }

    /// Whether `id` is currently driven by the heuristic fallback instead
    /// of the ML models (the QoS watchdog quarantined the model path).
    pub fn in_fallback(&self, id: AppId) -> bool {
        self.records.get(&id).map(|r| r.fallback).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    /// Emits one decision-trace record (no-op with telemetry disabled).
    /// `counts_as_action` is set exactly when [`Self::apply`] incremented
    /// the action counter, which is what keeps the trace's action count
    /// equal to [`Scheduler::action_count`] by construction.
    #[allow(clippy::too_many_arguments)]
    fn emit_trace(
        &self,
        now: f64,
        app: Option<AppId>,
        op: TraceOp,
        pre: Option<Allocation>,
        post: Option<Allocation>,
        counts_as_action: bool,
        detail: Option<String>,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let snap = |a: Allocation| AllocSnapshot { cores: a.cores.count(), ways: a.ways.count() };
        self.telemetry.trace(TraceRecord {
            tick: self.ticks,
            time_s: now,
            app: app.map(|a| a.0),
            kind: op.kind,
            provenance: op.provenance,
            pre: pre.map(snap),
            post: post.map(snap),
            counts_as_action,
            detail,
        });
    }

    /// Executes one allocation change, counting it as a scheduling action.
    /// Transient failures were already retried by the [`Retrying`] wrapper;
    /// a transient error here means the whole budget was exhausted, which
    /// counts as a watchdog strike against the target service.
    fn apply<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        id: AppId,
        alloc: Allocation,
        op: TraceOp,
    ) -> bool {
        let pre = server.allocation(id);
        let result = {
            let _span = self.telemetry.span("actuation.reallocate_us");
            server.reallocate(id, alloc)
        };
        self.note_faults(server);
        match result {
            Ok(()) => {
                self.actions += 1;
                self.emit_trace(server.now(), Some(id), op, pre, Some(alloc), true, None);
                self.decide(
                    server.now(),
                    Some(id),
                    Decision::Alloc {
                        kind: op.kind,
                        provenance: op.provenance,
                        pre,
                        post: alloc,
                        counts_as_action: true,
                    },
                );
                true
            }
            Err(e) => {
                self.telemetry.counter_add("scheduler.apply_failures", 1);
                if e.is_transient() {
                    if let Some(rec) = self.records.get_mut(&id) {
                        rec.failed_ml_actions += 1;
                    }
                }
                false
            }
        }
    }

    /// Drains the retry wrapper's observations into the event log and the
    /// watchdog's health state.
    fn note_faults<S: Substrate>(&mut self, server: &mut Retrying<'_, S>) {
        let stats = server.take_stats();
        if stats.is_empty() {
            return;
        }
        let now = server.now();
        if !stats.faults.is_empty() {
            self.last_fault_s = Some(now);
        }
        self.telemetry.counter_add("resilience.faults_observed", stats.faults.len() as u64);
        self.telemetry.counter_add("resilience.retries", stats.retried.len() as u64);
        self.telemetry.counter_add("resilience.persistent_failures", stats.persistent as u64);
        for app in stats.faults {
            self.log.push(now, Some(app), EventKind::FaultInjected { transient: true });
            self.note(now, Some(app), TelemetryNote::FaultObserved { transient: true });
        }
        for (app, attempts, backoff_ms) in stats.retried {
            self.log.push(now, Some(app), EventKind::ActuationRetried { attempts, backoff_ms });
            self.note(now, Some(app), TelemetryNote::Retried { attempts, backoff_ms });
            self.telemetry.observe("actuation.retry_backoff_us", backoff_ms * 1e3);
            self.emit_trace(
                now,
                Some(app),
                TraceOp::new(ActionKind::Retry, Provenance::Controller),
                None,
                None,
                false,
                Some(format!("attempts={attempts} backoff_ms={backoff_ms}")),
            );
        }
        self.persistent_failures += stats.persistent;
    }

    /// Whether a platform fault was observed recently enough that the
    /// watchdog should treat ineffective ML actions as suspect.
    fn platform_unhealthy(&self, now: f64) -> bool {
        self.last_fault_s.is_some_and(|t| now - t <= self.config.fault_attention_s)
    }

    /// Runs a compound allocation move transactionally: if `op` fails *and*
    /// some actuation inside it failed persistently (retry budget
    /// exhausted), every service is restored to its layout from before the
    /// move — a half-applied move under a flaky platform is worse than no
    /// move. Capacity failures without platform faults do not roll back
    /// (identical to the pre-resilience controller). Nested calls collapse
    /// into the outermost transaction.
    fn transact<'a, S: Substrate>(
        &mut self,
        server: &mut Retrying<'a, S>,
        op: impl FnOnce(&mut Self, &mut Retrying<'a, S>) -> bool,
    ) -> bool {
        self.txn_depth += 1;
        let snapshot: Vec<(AppId, Allocation)> = if self.txn_depth == 1 {
            server.apps().into_iter().filter_map(|a| server.allocation(a).map(|x| (a, x))).collect()
        } else {
            Vec::new()
        };
        let persistent_before = self.persistent_failures;
        let ok = op(self, server);
        self.txn_depth -= 1;
        if self.txn_depth > 0 {
            return ok;
        }
        // Repack moves inside `op` bypass `apply`; drain them before judging.
        self.note_faults(server);
        if ok || self.persistent_failures == persistent_before {
            return ok;
        }
        let mut restored = 0usize;
        for (id, alloc) in snapshot {
            let pre = server.allocation(id);
            if pre != Some(alloc) && server.reallocate(id, alloc).is_ok() {
                restored += 1;
                self.decide(
                    server.now(),
                    Some(id),
                    Decision::Alloc {
                        kind: ActionKind::Restore,
                        provenance: Provenance::Controller,
                        pre,
                        post: alloc,
                        counts_as_action: false,
                    },
                );
            }
        }
        self.note_faults(server);
        if restored > 0 {
            self.log.push(server.now(), None, EventKind::TransactionAborted { services: restored });
            self.decide(server.now(), None, Decision::TransactionAborted { services: restored });
            self.emit_trace(
                server.now(),
                None,
                TraceOp::new(ActionKind::Restore, Provenance::Controller),
                None,
                None,
                false,
                Some(format!("services={restored}")),
            );
        }
        false
    }

    /// Samples `id`, validating the window: a dropped or NaN-poisoned
    /// sample is logged as a fault and degrades to the last good
    /// observation, so the models never ingest garbage.
    fn fresh_sample<S: Substrate>(
        &mut self,
        server: &Retrying<'_, S>,
        id: AppId,
    ) -> Option<CounterSample> {
        match server.sample(id) {
            Some(s) if s.is_valid() => {
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.last_good = Some(s);
                }
                Some(s)
            }
            _ => {
                let now = server.now();
                self.log.push(now, Some(id), EventKind::FaultInjected { transient: true });
                self.note(now, Some(id), TelemetryNote::FaultObserved { transient: true });
                self.last_fault_s = Some(now);
                self.records.get(&id).and_then(|r| r.last_good)
            }
        }
    }

    /// Model-B′ pricing with its inference span attached.
    fn price_slowdown(&self, sample: &CounterSample, dcores: usize, dways: usize) -> f64 {
        let _span = self.telemetry.span("model.b_prime.predict_us");
        self.decisions.add(1);
        self.models.model_b_prime.predict(sample, dcores, dways)
    }

    /// The allocation floor a deprivation may not push `victim` below.
    ///
    /// "OSML moves away from the OAA to somewhere close to RCliff (saving
    /// resources), but will not easily step into it" (§V-A): offers are
    /// clamped so a victim never drops below its predicted RCliff (or
    /// 1 core / 1 way if it was never profiled). If the prediction was
    /// optimistic, the pending-reclaim rollback restores the victim on the
    /// next sample. A victim meeting QoS at its current holding proves its
    /// true cliff lies below it, so with wide measured slack a stale floor
    /// above the holding is relaxed to allow at least one unit per
    /// dimension.
    fn victim_floor(
        &self,
        victim: AppId,
        vcores: usize,
        vways: usize,
        wide_slack: bool,
    ) -> (usize, usize) {
        let floor = self
            .records
            .get(&victim)
            .map(|r| (r.prediction.rcliff.cores, r.prediction.rcliff.ways))
            .unwrap_or((1, 1));
        if wide_slack {
            (floor.0.min(vcores.saturating_sub(1)), floor.1.min(vways.saturating_sub(1)))
        } else {
            floor
        }
    }

    /// Clamps a victim's three B-points into usable offers. Model-B
    /// proposes; Model-B′ verifies ("minimal impact on the current
    /// allocation status", Alg. 1 line 17): each offer shrinks until the
    /// shadow model prices it within the budget. When the victim's
    /// *measured* slack is wide, the measurement dominates the model — a
    /// service at half its latency budget can afford a 15 % slowdown
    /// regardless of what the learned surface says (deprivations are
    /// withdrawn on the next sample if wrong).
    #[allow(clippy::too_many_arguments)]
    fn usable_offer(
        &self,
        points: &BPoints,
        vs: &CounterSample,
        vcores: usize,
        vways: usize,
        floor: (usize, usize),
        wide_slack: bool,
        budget: f64,
    ) -> Vec<(usize, usize)> {
        points
            .iter()
            .map(|p| {
                let mut dc = p.cores.min(vcores.saturating_sub(floor.0));
                let mut dw = p.ways.min(vways.saturating_sub(floor.1));
                while !wide_slack && (dc > 0 || dw > 0) && self.price_slowdown(vs, dc, dw) > budget
                {
                    if dc >= dw && dc > 0 {
                        dc -= 1;
                    } else {
                        dw = dw.saturating_sub(1);
                    }
                }
                (dc, dw)
            })
            .collect()
    }

    /// Rebuilds the timer wheel from authoritative state (record deadlines
    /// and the admission queue). Events are hints, so this is a plain
    /// re-scheduling of every live deadline — called after recovery and
    /// after a config swap. Scan mode keeps the wheel empty.
    fn rebuild_timers(&mut self) {
        self.timers.clear();
        self.scratch.pred_by_pos.clear();
        self.scratch.c_by_pos.clear();
        self.scratch.due_queue_deadlines.clear();
        // Probe memos key on observations from the previous regime; a
        // recovery or config swap invalidates all of them.
        for rec in self.records.values_mut() {
            rec.probe_memo = None;
        }
        if !self.config.event_driven {
            return;
        }
        let now = self.ticks;
        for (&id, rec) in self.records.iter() {
            if rec.cooldown_until > now {
                self.timers.schedule(rec.cooldown_until, TimerEvent::CooldownExpiry(id));
            }
            for &(_, until) in &rec.blocked {
                if until > now {
                    self.timers.schedule(until, TimerEvent::BlockedExpiry(id));
                }
            }
        }
        let max_wait = self.config.overload.max_wait_ticks;
        for e in &self.overload.queue {
            self.timers.schedule_queue_deadline(e.enqueued_tick + max_wait, e.seq, e.ticket);
        }
    }

    /// Event-mode tick prologue: pops every timer due at the current tick.
    /// Record timers are garbage-collected on the spot (idempotent — the
    /// authoritative deadline lives on the record, so a stale or duplicate
    /// event drops without effect). Queue deadlines are buffered and handled
    /// inside [`Self::overload_control`], the same tick position the
    /// scan-based loop expires them at.
    fn drain_due_timers(&mut self) {
        let now = self.ticks;
        while let Some(event) = self.timers.pop_due(now) {
            match event {
                TimerEvent::CooldownExpiry(id) => {
                    if let Some(rec) = self.records.get_mut(&id) {
                        if rec.cooldown_until != 0 && rec.cooldown_until <= now {
                            rec.cooldown_until = 0;
                        }
                        // Timer state moved: re-probe in full (defensive — a
                        // memo can only exist with no cooldown armed).
                        rec.probe_memo = None;
                    }
                }
                TimerEvent::BlockedExpiry(id) => {
                    if let Some(rec) = self.records.get_mut(&id) {
                        rec.blocked.retain(|&(_, until)| until > now);
                        rec.probe_memo = None;
                    }
                }
                TimerEvent::QueueDeadline { ticket } => {
                    self.scratch.due_queue_deadlines.push(ticket);
                }
            }
        }
    }

    /// Event-mode Model-A pre-pass: gathers one feature row per service
    /// that will refresh its prediction this tick and runs a single fused
    /// forward pass over the whole batch. The per-service loop consumes the
    /// results at its refresh site and falls back to a scalar predict for
    /// anything the gather could not anticipate (e.g. a pending action that
    /// settles moments before the refresh). The decode path is shared with
    /// the scalar predict, so batched and scalar results are bit-identical.
    ///
    /// The gather reads [`Substrate::peek_sample`] — a side-effect-free read
    /// that leaves fault-injection decision streams untouched, so the
    /// faultable call sequence (`reallocate`/`sample`) is identical to the
    /// scan engine's. The authoritative `fresh_sample` call with its fault
    /// logging and `last_good` update still happens in the loop body.
    /// Services whose memoized quiescent probe still matches the peeked
    /// window are skipped outright — their prediction will not be refreshed
    /// this tick (see [`AppRecord::probe_memo`]).
    fn batch_model_a_refresh<S: Substrate>(&mut self, server: &Retrying<'_, S>, ids: &[AppId]) {
        self.scratch.pred_by_pos.clear();
        self.scratch.pred_by_pos.resize(ids.len(), None);
        self.scratch.rows.clear();
        self.scratch.samples.clear();
        for (pos, &id) in ids.iter().enumerate() {
            let Some(rec) = self.records.get(&id) else { continue };
            if rec.fallback || rec.pending.is_some() {
                continue;
            }
            let Some(sample) =
                server.peek_sample(id).filter(CounterSample::is_valid).or(rec.last_good)
            else {
                continue;
            };
            if rec.probe_memo.as_ref().is_some_and(|m| m.sample == sample) {
                continue; // likely memo hit: the loop will skip the refresh
            }
            self.scratch.rows.push(pos);
            self.scratch.samples.push(sample);
        }
        if self.scratch.rows.is_empty() {
            return;
        }
        let scratch = &mut self.scratch;
        scratch.inputs.reset(scratch.rows.len(), BASE_FEATURES);
        for (r, sample) in scratch.samples.iter().enumerate() {
            write_base_features(sample, scratch.inputs.row_mut(r));
        }
        {
            let _span = self.telemetry.span("model.a.predict_us");
            self.models.model_a.predict_batch_into(
                &scratch.inputs,
                &mut scratch.s1,
                &mut scratch.s2,
                &mut scratch.preds,
            );
        }
        self.decisions.add(scratch.preds.len() as u64);
        for (i, &pos) in scratch.rows.iter().enumerate() {
            scratch.pred_by_pos[pos] = Some((scratch.preds[i], scratch.samples[i]));
        }
    }

    /// Event-mode Model-C pre-pass, run right after the Model-A gather (it
    /// reuses the gathered rows/samples): selects the services whose probe
    /// may consult Model-C this tick — a guarded QoS violation heading into
    /// Algorithm 2, or a reclaimable surplus heading into Algorithm 3 — and
    /// computes their 49-action Q-rows in one fused forward pass. The rows
    /// land in the *owned* `c_q` matrix (`inputs`/`s1`/`s2` are reused by
    /// Algorithm 4's Model-B′ batch mid-loop) and are consumed by
    /// [`Self::model_c_action_where`], which falls back to the scalar path
    /// whenever the live sample or the policy weights moved since the
    /// gather. Selection only steers efficiency: an extra row is unused, a
    /// missed one is computed scalar; decisions are unaffected either way.
    /// Eligibility is judged from record fields and the gathered samples
    /// alone — no substrate queries — so the pre-pass stays O(fleet) cheap:
    /// a running violation streak predicts the Algorithm 2 consult, and the
    /// sample's own `allocated_cores`/`allocated_ways` stand in for the
    /// layout in the Algorithm 3 surplus test.
    fn batch_model_c_prepass(&mut self, ids: &[AppId]) {
        self.scratch.c_by_pos.clear();
        self.scratch.c_by_pos.resize(ids.len(), None);
        self.scratch.c_rows.clear();
        self.scratch.c_revision = self.models.model_c.revision();
        let margin = self.config.surplus_margin;
        for (i, &pos) in self.scratch.rows.iter().enumerate() {
            let id = ids[pos];
            let Some(rec) = self.records.get(&id) else { continue };
            let sample = &self.scratch.samples[i];
            let eligible = if rec.violation_ticks > 0 {
                true // an ongoing streak predicts Algorithm 2's consult
            } else if rec.cooldown_until > self.ticks {
                false // Algorithm 3 returns before its Model-C consult
            } else {
                let floor_quiet = rec.reclaim_floor.is_some_and(|(fc, fw, cpu)| {
                    (sample.cpu_usage - cpu).abs() <= 0.15 * cpu.max(0.5)
                        && sample.allocated_cores <= fc
                        && sample.allocated_ways <= fw
                });
                // The surplus test mirrors Algorithm 3 against the cliff the
                // loop will actually hold: the batched refresh result.
                let cliff = self
                    .scratch
                    .pred_by_pos
                    .get(pos)
                    .and_then(|p| p.as_ref())
                    .map(|&(pred, _)| pred)
                    .unwrap_or(rec.prediction)
                    .rcliff;
                !floor_quiet
                    && (sample.allocated_cores > cliff.cores + margin
                        || sample.allocated_ways > cliff.ways + margin)
            };
            if eligible {
                self.scratch.c_rows.push((i, pos));
            }
        }
        if self.scratch.c_rows.is_empty() {
            return;
        }
        let BatchScratch { inputs, s1, s2, samples, c_rows, c_q, c_by_pos, .. } = &mut self.scratch;
        inputs.reset(c_rows.len(), MODEL_C_STATE);
        for (r, &(i, _)) in c_rows.iter().enumerate() {
            write_model_c_state(&samples[i], inputs.row_mut(r));
        }
        let q = {
            let _span = self.telemetry.span("model.c.batch_us");
            self.models.model_c.q_values_batch_into(inputs, s1, s2)
        };
        c_q.reset(q.rows(), q.cols());
        for r in 0..q.rows() {
            c_q.row_mut(r).copy_from_slice(q.row(r));
        }
        for (r, &(i, pos)) in c_rows.iter().enumerate() {
            c_by_pos[pos] = Some((r, samples[i]));
        }
    }

    /// Model-C action selection for the service at `pos`: uses the batched
    /// Q-row from [`Self::batch_model_c_prepass`] when it is still valid
    /// (same sample, same policy revision), else the scalar forward pass.
    /// Both decode through [`best_action_from_q`], so the choice of path
    /// never changes the action. Counted as one decision per consult — the
    /// same accounting as the scalar engine.
    fn model_c_action_where(
        &self,
        pos: usize,
        sample: &CounterSample,
        eligible: impl FnMut(Action) -> bool,
    ) -> Option<Action> {
        let _span = self.telemetry.span("model.c.infer_us");
        self.decisions.add(1);
        if let Some(Some((row, gathered))) = self.scratch.c_by_pos.get(pos) {
            if gathered == sample && self.scratch.c_revision == self.models.model_c.revision() {
                return best_action_from_q(self.scratch.c_q.row(*row), eligible);
            }
        }
        self.models.model_c.best_action_where(sample, eligible)
    }

    /// Whether placement paths enforce strict overlap hygiene: whenever a
    /// core set is re-derived from a service's current holding, cores that
    /// another service also holds are subtracted first.
    ///
    /// On a packed machine `bootstrap_allocation` can transiently overlap
    /// neighbours until the first real placement; with overload management
    /// off that window is one profiling interval and the committed figure
    /// corpus was generated through it, so the legacy paths are kept
    /// bit-for-bit unless [`OsmlConfig::strict_layout`] opts in. Under
    /// overload management the window is wide open — admission churn,
    /// shed/restore and stale Algorithm-3 rollbacks can launder an overlap
    /// into a dedicated allocation and double-assign a core — so every
    /// re-derivation goes through the strict path (the overload harness
    /// checks the layout invariant every tick).
    fn strict_overlap(&self) -> bool {
        self.config.strict_layout || self.config.overload.is_enabled()
    }

    /// Picks `n` cores for `id` from the idle pool plus its own cores
    /// (minus overlapped cores when [`Self::strict_overlap`] demands it).
    fn pick_cores<S: Substrate>(&self, server: &S, id: AppId, n: usize) -> Option<CoreSet> {
        let topo = server.topology();
        let mut own = server.allocation(id).map(|a| a.cores).unwrap_or_default();
        if self.strict_overlap() {
            for other in server.apps() {
                if other != id {
                    if let Some(a) = server.allocation(other) {
                        own = own.difference(a.cores);
                    }
                }
            }
        }
        let pool = server.idle_cores().union(own);
        pool.pick_spread(topo, n)
    }

    /// Allocates `id` a dedicated `<cores, ways>` target if the machine has
    /// room (repacking masks as needed). Returns false if it does not fit.
    /// Transactional: a persistent actuation failure mid-repack restores
    /// every touched service instead of leaving a half-applied layout.
    fn try_allocate_dedicated<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        id: AppId,
        cores: usize,
        ways: usize,
        op: TraceOp,
    ) -> bool {
        self.transact(server, |this, server| {
            let Some(core_set) = this.pick_cores(server, id, cores) else { return false };
            if free_way_run_after_repack(server, Some(id)) < ways {
                return false;
            }
            // Pack everyone else to the left, then take the free tail.
            let repack = repack_ways_with_last(server, None);
            this.note_repack(server.now(), &repack.moves);
            let Some(mask) = server.find_free_ways(ways, Some(id)) else { return false };
            let mba = server.allocation(id).map(|a| a.mba).unwrap_or_default();
            this.apply(server, id, Allocation::new(core_set, mask, mba), op)
        })
    }

    /// §V-B bandwidth scheduling: partition MBA throttles in proportion to
    /// each service's predicted OAA bandwidth (`BW_j / Σ BW_i`).
    fn repartition_bandwidth<S: Substrate>(&mut self, server: &mut Retrying<'_, S>) {
        if !self.config.manage_bandwidth {
            return;
        }
        let total: f64 = self
            .records
            .iter()
            .filter(|(id, _)| server.allocation(**id).is_some())
            .map(|(_, r)| r.prediction.oaa_bandwidth_gbps())
            .sum();
        if total <= 0.0 {
            return;
        }
        let ids: Vec<AppId> = server.apps();
        for id in ids {
            let Some(record) = self.records.get(&id) else { continue };
            let share = record.prediction.oaa_bandwidth_gbps() / total;
            let throttle = MbaThrottle::covering_fraction(share.max(0.1));
            if let Some(pre) = server.allocation(id) {
                if pre.mba != throttle {
                    let mut alloc = pre;
                    alloc.mba = throttle;
                    // MBA reprogramming is not an allocation action in the
                    // paper's overhead accounting; apply directly (retried
                    // by the wrapper, surfaced by the note_faults drain).
                    if server.reallocate(id, alloc).is_ok() {
                        self.decide(
                            server.now(),
                            Some(id),
                            Decision::Alloc {
                                kind: ActionKind::BandwidthRepartitioned,
                                provenance: Provenance::Controller,
                                pre: Some(pre),
                                post: alloc,
                                counts_as_action: false,
                            },
                        );
                    }
                }
            }
        }
        self.note_faults(server);
        self.log.push(server.now(), None, EventKind::BandwidthRepartitioned);
        self.emit_trace(
            server.now(),
            None,
            TraceOp::new(ActionKind::BandwidthRepartitioned, Provenance::Controller),
            None,
            None,
            false,
            None,
        );
    }

    // ------------------------------------------------------------------
    // Overload management: typed admission, arrival queue, brownout
    // ------------------------------------------------------------------

    /// Arrivals currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.overload.queue.len()
    }

    /// Whether the controller is in its declared degraded state.
    pub fn in_brownout(&self) -> bool {
        self.overload.brownout_since.is_some()
    }

    /// Whether `ticket` still holds a seat (queued or shed). A ticket that
    /// stops waiting without being admitted timed out or was cancelled.
    pub fn is_waiting(&self, ticket: u64) -> bool {
        self.overload.is_waiting(ticket)
    }

    /// Read-only view of the overload state (for harness assertions).
    pub fn overload_state(&self) -> &OverloadState {
        &self.overload
    }

    /// Services the controller shed during brownout that the harness has
    /// not yet withdrawn from the substrate. The harness must remove each
    /// from the substrate (their records are already gone — do **not** call
    /// `on_departure`) and treat the id as a waiting ticket.
    pub fn take_shed(&mut self) -> Vec<AppId> {
        self.overload.pending_shed.drain(..).map(AppId).collect()
    }

    /// Hands the harness one ticket to retry, consuming a banked retry
    /// credit: the most protected, oldest queued arrival first; with the
    /// queue empty (and brownout over), the most recently shed service.
    /// The harness relaunches the service and calls
    /// [`Scheduler::on_arrival_classed`]; until then the ticket is
    /// in-flight and cannot expire.
    pub fn poll_admission(&mut self) -> Option<u64> {
        if self.overload.in_flight.is_some() || self.overload.retry_credits == 0 {
            return None;
        }
        let ticket = if let Some(i) = self.overload.head_index() {
            Some(self.overload.queue[i].ticket)
        } else if self.overload.brownout_since.is_none() || self.overload.exit_streak > 0 {
            // Queue pressure is gone (or brownout is already winding down):
            // shed work returns LIFO — before the shave ledger is restored,
            // matching the reverse of the degradation order.
            self.overload.shed.last().map(|e| e.ticket)
        } else {
            None
        }?;
        self.overload.retry_credits -= 1;
        self.overload.in_flight = Some(ticket);
        Some(ticket)
    }

    /// Withdraws a waiting ticket (the scripted departure time of a
    /// still-queued arrival passed, or the harness gave up on it). Returns
    /// whether anything was removed.
    pub fn cancel_ticket(&mut self, ticket: u64) -> bool {
        if self.overload.in_flight == Some(ticket) {
            self.overload.in_flight = None;
        }
        let before = self.overload.queue.len() + self.overload.shed.len();
        self.overload.queue.retain(|e| e.ticket != ticket);
        self.overload.shed.retain(|e| e.ticket != ticket);
        let removed = before != self.overload.queue.len() + self.overload.shed.len();
        if removed {
            self.decide_untimed(Some(AppId(ticket)), Decision::Cancelled { ticket });
        }
        removed
    }

    /// Makes a rejection visible: typed event + trace record + counter.
    /// Never an action — `action_count()` only moves when an allocation
    /// changes.
    fn note_rejection(&mut self, now: f64, app: Option<AppId>, reason: RejectReason) {
        self.log.push(now, app, EventKind::Rejected { reason });
        self.decide(now, app, Decision::Rejected { reason });
        self.emit_trace(
            now,
            app,
            TraceOp::new(ActionKind::Reject, Provenance::Controller),
            None,
            None,
            false,
            Some(format!("{reason:?}")),
        );
        self.telemetry.counter_add("overload.rejections", 1);
    }

    /// A retried (previously queued or shed) arrival landed: release its
    /// seat and log the admission.
    fn settle_admitted(&mut self, now: f64, ticket: u64, id: AppId, alloc: Option<Allocation>) {
        if let Some(pos) = self.overload.queue.iter().position(|e| e.ticket == ticket) {
            let entry = self.overload.queue.remove(pos);
            let waited = self.ticks.saturating_sub(entry.enqueued_tick);
            self.log.push(now, Some(id), EventKind::QueueAdmitted { waited_ticks: waited });
            self.decide(now, Some(id), Decision::Admitted { ticket, waited_ticks: waited });
            self.emit_trace(
                now,
                Some(id),
                TraceOp::new(ActionKind::QueueAdmit, Provenance::Controller),
                None,
                alloc,
                false,
                Some(format!("ticket={ticket} waited_ticks={waited}")),
            );
            self.telemetry.counter_add("overload.queue_admitted", 1);
        } else if let Some(pos) = self.overload.shed.iter().rposition(|e| e.ticket == ticket) {
            self.overload.shed.remove(pos);
            self.decide(now, Some(id), Decision::ShedReadmitted { ticket });
            let (cores, ways) = alloc.map(|a| (a.cores.count(), a.ways.count())).unwrap_or((0, 0));
            self.log.push(now, Some(id), EventKind::Restored { cores, ways });
            self.emit_trace(
                now,
                Some(id),
                TraceOp::new(ActionKind::QueueAdmit, Provenance::Controller),
                None,
                alloc,
                false,
                Some(format!("ticket={ticket} shed_readmitted")),
            );
            self.telemetry.counter_add("overload.shed_readmitted", 1);
        }
    }

    /// Routes Algorithm 1's rejection through the admission controller:
    /// queue the arrival (bounded, priority-ordered) or reject it with a
    /// typed reason. A failed retry keeps its seat and its original wait
    /// clock.
    fn admission_decide(
        &mut self,
        now: f64,
        id: AppId,
        class: SloClass,
        reason: RejectReason,
        retry_of: Option<u64>,
    ) -> Placement {
        self.note_rejection(now, Some(id), reason);
        if let Some(ticket) = retry_of {
            if self.overload.is_waiting(ticket) {
                // The relaunched process is about to be withdrawn again;
                // its departure frees no new capacity.
                self.overload.suppress_credit_for = Some(id.0);
                return Placement::Deferred { ticket };
            }
        }
        let cfg = self.config.overload.clone();
        if !cfg.is_enabled() || reason == RejectReason::ProfilingFailed {
            return Placement::Rejected(reason);
        }
        if self.overload.queue.len() >= cfg.queue_depth {
            match self.overload.eviction_index() {
                Some(i) if self.overload.queue[i].class.rank() > class.rank() => {
                    let evicted = self.overload.queue.remove(i);
                    let app = Some(AppId(evicted.ticket));
                    self.decide(now, app, Decision::Evicted { ticket: evicted.ticket });
                    self.note_rejection(now, app, RejectReason::QueueFull);
                }
                _ => {
                    self.note_rejection(now, Some(id), RejectReason::QueueFull);
                    return Placement::Rejected(RejectReason::QueueFull);
                }
            }
        }
        let seq = self.overload.next_seq;
        self.overload.next_seq += 1;
        // The arrival was profiled before Algorithm 1 gave up, so its
        // RCliff (the smallest holding the controller would accept) is
        // known; brownout uses it to decide whether shedding can help.
        let (need_cores, need_ways) = self
            .records
            .get(&id)
            .map(|r| (r.prediction.rcliff.cores, r.prediction.rcliff.ways))
            .unwrap_or((0, 0));
        let entry = QueuedEntry {
            ticket: id.0,
            class,
            enqueued_tick: self.ticks,
            seq,
            need_cores,
            need_ways,
        };
        self.overload.queue.push(entry);
        self.decide(now, Some(id), Decision::Deferred { entry });
        if self.config.event_driven {
            // Arm the waiter's max-wait horizon; the entry's own seq is the
            // tie-break so same-tick timeouts drain in queue order.
            self.timers.schedule_queue_deadline(self.ticks + cfg.max_wait_ticks, seq, id.0);
        }
        self.overload.suppress_credit_for = Some(id.0);
        self.log.push(now, Some(id), EventKind::QueueDeferred { depth: self.overload.queue.len() });
        self.emit_trace(
            now,
            Some(id),
            TraceOp::new(ActionKind::Defer, Provenance::Controller),
            None,
            None,
            false,
            Some(format!("reason={reason:?} class={class:?}")),
        );
        self.telemetry.counter_add("overload.deferred", 1);
        Placement::Deferred { ticket: id.0 }
    }

    /// Per-tick overload work: expire stale waiters, watch for reclaim
    /// slack, and drive the brownout state machine. Returns immediately
    /// (zero cost, zero behavior change) while overload is disabled.
    fn overload_control<S: Substrate>(&mut self, server: &mut Retrying<'_, S>) {
        let cfg = self.config.overload.clone();
        if !cfg.is_enabled() {
            return;
        }
        let now = server.now();
        // Expire waiters past the max-wait horizon (the in-flight ticket is
        // mid-retry and judged by its arrival instead).
        let in_flight = self.overload.in_flight;
        let ticks = self.ticks;
        if self.config.event_driven {
            // Deadline events popped at tick start stand in for the scan.
            // Each is a hint re-checked against the authoritative queue
            // entry: stale events (admitted, cancelled) drop; an in-flight
            // or reused ticket re-arms instead of expiring a fresh waiter.
            let mut due = std::mem::take(&mut self.scratch.due_queue_deadlines);
            for ticket in due.drain(..) {
                let Some(pos) = self.overload.queue.iter().position(|e| e.ticket == ticket) else {
                    continue;
                };
                let entry = self.overload.queue[pos];
                if Some(ticket) == in_flight {
                    // Mid-retry: keeps its seat; re-check next tick.
                    self.timers.schedule_queue_deadline(ticks + 1, entry.seq, ticket);
                    continue;
                }
                let waited = ticks.saturating_sub(entry.enqueued_tick);
                if waited < cfg.max_wait_ticks {
                    // The ticket number was reused by a newer entry; re-arm
                    // at that entry's own horizon.
                    self.timers.schedule_queue_deadline(
                        entry.enqueued_tick + cfg.max_wait_ticks,
                        entry.seq,
                        ticket,
                    );
                    continue;
                }
                self.overload.queue.remove(pos);
                let app = Some(AppId(ticket));
                self.log.push(now, app, EventKind::QueueTimedOut { waited_ticks: waited });
                self.decide(now, app, Decision::TimedOut { ticket, waited_ticks: waited });
                self.note_rejection(now, app, RejectReason::WaitTimeout);
                self.telemetry.counter_add("overload.timeouts", 1);
            }
            self.scratch.due_queue_deadlines = due;
        } else {
            let (expired, kept): (Vec<QueuedEntry>, Vec<QueuedEntry>) =
                self.overload.queue.drain(..).partition(|e| {
                    Some(e.ticket) != in_flight
                        && ticks.saturating_sub(e.enqueued_tick) >= cfg.max_wait_ticks
                });
            self.overload.queue = kept;
            for e in expired {
                let waited = ticks.saturating_sub(e.enqueued_tick);
                let app = Some(AppId(e.ticket));
                self.log.push(now, app, EventKind::QueueTimedOut { waited_ticks: waited });
                self.decide(
                    now,
                    app,
                    Decision::TimedOut { ticket: e.ticket, waited_ticks: waited },
                );
                self.note_rejection(now, app, RejectReason::WaitTimeout);
                self.telemetry.counter_add("overload.timeouts", 1);
            }
        }
        // Reclaim-slack retry signal: idle capacity grew since last tick
        // (Algorithm 3 reclaimed, a shave landed, a neighbour shrank).
        let idle = (server.idle_cores().count(), server.idle_way_count());
        if let Some(last) = self.overload.last_idle {
            if (idle.0 > last.0 || idle.1 > last.1) && self.overload.is_active() {
                self.overload.bank_credit();
            }
        }
        self.overload.last_idle = Some(idle);
        if cfg.brownout {
            self.brownout_control(server, &cfg);
        }
        if self.telemetry.is_enabled() {
            self.telemetry.gauge_set("overload.queue_depth", self.overload.queue.len() as f64);
            self.telemetry.gauge_set("overload.shed_depth", self.overload.shed.len() as f64);
            let degraded = if self.overload.brownout_since.is_some() { 1.0 } else { 0.0 };
            self.telemetry.gauge_set("overload.brownout", degraded);
        }
    }

    /// The brownout state machine: enter on sustained non-best-effort
    /// queue pressure, shave cheapest-priced slack (then shed best-effort
    /// LIFO) while pressure lasts, restore in reverse order and exit after
    /// a quiet hold.
    fn brownout_control<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        cfg: &OverloadConfig,
    ) {
        let now = server.now();
        let pressing = self
            .overload
            .queue
            .iter()
            .filter(|e| e.class != SloClass::BestEffort)
            .map(|e| self.ticks.saturating_sub(e.enqueued_tick))
            .max();
        let sustained = pressing.is_some_and(|w| w >= cfg.brownout_after_ticks);
        if sustained {
            if self.overload.brownout_since.is_none() {
                self.overload.brownout_since = Some(self.ticks);
                let queued = self.overload.queue.len();
                self.log.push(now, None, EventKind::BrownoutEntered { queued });
                self.decide(now, None, Decision::BrownoutEntered { queued });
                self.emit_trace(
                    now,
                    None,
                    TraceOp::new(ActionKind::BrownoutEnter, Provenance::Controller),
                    None,
                    None,
                    false,
                    Some(format!("queued={queued}")),
                );
                self.telemetry.counter_add("overload.brownout_entries", 1);
            }
            self.overload.exit_streak = 0;
            let mut progressed = false;
            for _ in 0..cfg.shave_step_budget {
                if self.shave_step(server, cfg) {
                    progressed = true;
                } else {
                    break;
                }
            }
            if !progressed {
                // Pricing cannot cover the deficit: shed best-effort work.
                progressed = self.shed_step(server);
            }
            if progressed {
                self.overload.bank_credit();
            }
        } else if self.overload.brownout_since.is_some() {
            if self.overload.queue.is_empty() {
                self.overload.exit_streak += 1;
            } else {
                self.overload.exit_streak = 0;
            }
            // While winding down with shed work still parked, keep one
            // retry funded per tick so re-admission does not have to wait
            // for the next departure.
            if self.overload.exit_streak > 0 && !self.overload.shed.is_empty() {
                self.overload.bank_credit();
            }
            if self.overload.exit_streak >= cfg.brownout_exit_hold_ticks {
                self.restore_step(server);
                if self.overload.shaved.is_empty() {
                    let entered = self.overload.brownout_since.take().expect("in brownout");
                    self.overload.exit_streak = 0;
                    // Load has subsided: fund the re-admission of shed work
                    // without waiting for the next departure.
                    self.overload.bank_credit();
                    let degraded = self.ticks.saturating_sub(entered);
                    self.log.push(
                        now,
                        None,
                        EventKind::BrownoutExited { ticks_degraded: degraded },
                    );
                    self.decide(now, None, Decision::BrownoutExited { ticks_degraded: degraded });
                    self.emit_trace(
                        now,
                        None,
                        TraceOp::new(ActionKind::BrownoutExit, Provenance::Controller),
                        None,
                        None,
                        false,
                        Some(format!("ticks_degraded={degraded}")),
                    );
                }
            }
        }
    }

    /// One brownout shave: take one core *or* one way from the service
    /// where Model-B′ prices the unit cheapest, respecting each class's
    /// cumulative slowdown ceiling. Only services with real QoS slack are
    /// candidates — brownout trades headroom, it does not manufacture new
    /// violations. Returns whether a shave landed.
    fn shave_step<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        cfg: &OverloadConfig,
    ) -> bool {
        let mut candidates: Vec<(AppId, Allocation, f64)> = Vec::new();
        for id in server.apps() {
            let Some(rec) = self.records.get(&id) else { continue };
            let ceiling = cfg.ceiling(rec.class);
            let already: f64 =
                self.overload.shaved.iter().filter(|s| s.app == id.0).map(|s| s.priced).sum();
            if already >= ceiling {
                continue;
            }
            if server.latency(id).map(|l| l.qos_slack() < 0.1).unwrap_or(true) {
                continue;
            }
            let Some(alloc) = server.allocation(id) else { continue };
            if alloc.cores.count() <= 1 && alloc.ways.count() <= 1 {
                continue;
            }
            candidates.push((id, alloc, ceiling - already));
        }
        let mut best: Option<(f64, u64, Allocation, usize, usize)> = None;
        for (id, alloc, headroom) in candidates {
            let Some(sample) = self.fresh_sample(server, id) else { continue };
            for (dc, dw) in [(1usize, 0usize), (0, 1)] {
                if (dc == 1 && alloc.cores.count() <= 1) || (dw == 1 && alloc.ways.count() <= 1) {
                    continue;
                }
                let price = self.price_slowdown(&sample, dc, dw);
                if price > headroom {
                    continue;
                }
                if best.as_ref().is_none_or(|b| (price, id.0) < (b.0, b.1)) {
                    best = Some((price, id.0, alloc, dc, dw));
                }
            }
        }
        let Some((price, raw_id, old, dc, dw)) = best else { return false };
        let victim = AppId(raw_id);
        let keep = old.cores.count() - dc;
        let Some(kept_cores) = old.cores.pick_spread(server.topology(), keep) else {
            return false;
        };
        let mut alloc = old;
        alloc.cores = kept_cores;
        alloc.ways = old.ways.resized(-(dw as i32), server.topology().llc_ways());
        let op = TraceOp::new(ActionKind::Deprive, Provenance::ModelBPrime);
        if !self.apply(server, victim, alloc, op) {
            return false;
        }
        self.log.push(server.now(), Some(victim), EventKind::Deprived { cores: dc, ways: dw });
        self.decide(server.now(), Some(victim), Decision::Shaved { price, original: old });
        match self.overload.shaved.iter_mut().find(|s| s.app == victim.0) {
            Some(s) => s.priced += price,
            None => self.overload.shaved.push(ShaveRecord {
                app: victim.0,
                original: old,
                priced: price,
            }),
        }
        self.telemetry.counter_add("overload.shaves", 1);
        true
    }

    /// Sheds the most recently admitted best-effort service (LIFO). Its
    /// record moves to the shed stack for re-admission after brownout; the
    /// harness withdraws the process via [`Self::take_shed`]. Never touches
    /// latency-critical or degradable services, and never sheds at all when
    /// even the whole best-effort tier cannot cover the head waiter's
    /// recorded demand — an infeasible shed is a pure goodput loss.
    fn shed_step<S: Substrate>(&mut self, server: &mut Retrying<'_, S>) -> bool {
        let best_effort: Vec<AppId> = server
            .apps()
            .into_iter()
            .filter(|id| self.records.get(id).is_some_and(|r| r.class == SloClass::BestEffort))
            .collect();
        let victim = best_effort.iter().copied().max_by_key(|id| id.0);
        let Some(victim) = victim else { return false };
        if let Some(head) = self.overload.head_index().map(|i| self.overload.queue[i]) {
            let be_cores: usize = best_effort
                .iter()
                .filter_map(|&id| server.allocation(id))
                .map(|a| a.cores.count())
                .sum();
            let be_ways: usize = best_effort
                .iter()
                .filter_map(|&id| server.allocation(id))
                .map(|a| a.ways.count())
                .sum();
            let cores_reachable = server.idle_cores().count() + be_cores >= head.need_cores;
            let ways_reachable = server.idle_way_count() + be_ways >= head.need_ways;
            if !(cores_reachable && ways_reachable) {
                return false;
            }
        }
        let now = server.now();
        let pre = server.allocation(victim);
        self.records.remove(&victim);
        self.overload.shaved.retain(|s| s.app != victim.0);
        self.overload.shed.push(ShedEntry {
            ticket: victim.0,
            class: SloClass::BestEffort,
            shed_tick: self.ticks,
        });
        self.overload.pending_shed.push(victim.0);
        let entry = *self.overload.shed.last().expect("just pushed");
        self.decide(now, Some(victim), Decision::Shed { entry });
        self.log.push(now, Some(victim), EventKind::Shed);
        self.emit_trace(
            now,
            Some(victim),
            TraceOp::new(ActionKind::Shed, Provenance::Controller),
            pre,
            None,
            false,
            None,
        );
        self.telemetry.counter_add("overload.shed", 1);
        true
    }

    /// Restores shaved services to their pre-brownout allocations in
    /// reverse shave order, stopping at the first one the machine cannot
    /// fit yet (brownout stays open until the ledger drains).
    fn restore_step<S: Substrate>(&mut self, server: &mut Retrying<'_, S>) {
        while let Some(shave) = self.overload.shaved.last().copied() {
            let id = AppId(shave.app);
            let now = server.now();
            let Some(cur) = server.allocation(id) else {
                self.overload.shaved.pop();
                self.decide(now, Some(id), Decision::ShaveSettled);
                continue;
            };
            if !self.records.contains_key(&id) {
                self.overload.shaved.pop();
                self.decide(now, Some(id), Decision::ShaveSettled);
                continue;
            }
            let want_cores = shave.original.cores.count().max(cur.cores.count());
            let want_ways = shave.original.ways.count().max(cur.ways.count());
            if want_cores == cur.cores.count() && want_ways == cur.ways.count() {
                self.overload.shaved.pop(); // regrew on its own
                self.decide(now, Some(id), Decision::ShaveSettled);
                continue;
            }
            let op = TraceOp::new(ActionKind::Restore, Provenance::Controller);
            if self.try_allocate_dedicated(server, id, want_cores, want_ways, op) {
                self.log.push(
                    server.now(),
                    Some(id),
                    EventKind::Restored { cores: want_cores, ways: want_ways },
                );
                self.telemetry.counter_add("overload.restores", 1);
                self.overload.shaved.pop();
                self.decide(server.now(), Some(id), Decision::ShaveSettled);
            } else {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1: placement via Model-A, deprivation via Model-B
    // ------------------------------------------------------------------

    fn algorithm_1<S: Substrate>(&mut self, server: &mut Retrying<'_, S>, id: AppId) -> Placement {
        // Lines 1-3: profile for the sampling window, consult Model-A.
        server.advance(self.config.sampling_window_s);
        // A dropped or corrupt profiling window would poison the Model-A
        // prediction this service keeps until its first clean tick; extend
        // the profiling phase and re-sample instead (a clean first window
        // passes through untouched).
        let mut sample = server.sample(id).filter(CounterSample::is_valid);
        for _ in 0..3 {
            if sample.is_some() {
                break;
            }
            let now = server.now();
            self.log.push(now, Some(id), EventKind::FaultInjected { transient: true });
            self.note(now, Some(id), TelemetryNote::FaultObserved { transient: true });
            self.last_fault_s = Some(now);
            server.advance(0.5);
            sample = server.sample(id).filter(CounterSample::is_valid);
        }
        let Some(sample) = sample else {
            return Placement::Rejected(RejectReason::ProfilingFailed);
        };
        let prediction = {
            let _span = self.telemetry.span("model.a.predict_us");
            self.decisions.add(1);
            self.models.model_a.predict(&sample)
        };
        self.records.insert(
            id,
            AppRecord {
                prediction,
                pending: None,
                cooldown_until: 0,
                blocked: Vec::new(),
                reclaim_floor: None,
                migration_requested: false,
                violation_ticks: 0,
                last_good: Some(sample),
                failed_ml_actions: 0,
                fallback: false,
                fallback_ok_ticks: 0,
                class: SloClass::default(),
                probe_memo: None,
            },
        );
        self.log.push(
            server.now(),
            Some(id),
            EventKind::Profiled {
                oaa_cores: prediction.oaa.cores,
                oaa_ways: prediction.oaa.ways,
                rcliff_cores: prediction.rcliff.cores,
                rcliff_ways: prediction.rcliff.ways,
            },
        );
        self.decide(
            server.now(),
            Some(id),
            Decision::Profiled {
                oaa_cores: prediction.oaa.cores,
                oaa_ways: prediction.oaa.ways,
                rcliff_cores: prediction.rcliff.cores,
                rcliff_ways: prediction.rcliff.ways,
            },
        );

        // Ablation (§IV-D): with Model-A/B disabled, stay on the bootstrap
        // allocation and let Model-C explore from scratch.
        if !self.config.placement_via_models {
            return Placement::Placed;
        }

        // Lines 4-6: idle resources suffice for the OAA.
        let place = TraceOp::new(ActionKind::Place, Provenance::ModelA);
        if self.try_allocate_dedicated(server, id, prediction.oaa.cores, prediction.oaa.ways, place)
        {
            self.log.push(
                server.now(),
                Some(id),
                EventKind::Placed { cores: prediction.oaa.cores, ways: prediction.oaa.ways },
            );
            self.repartition_bandwidth(server);
            return Placement::Placed;
        }

        // Lines 7-22: deprive neighbours via Model-B, trying the OAA first
        // and the RCliff as the fallback target (line 19).
        for target in [prediction.oaa, prediction.rcliff] {
            if self.deprive_and_allocate(server, id, target.cores, target.ways, place) {
                self.log.push(
                    server.now(),
                    Some(id),
                    EventKind::Placed { cores: target.cores, ways: target.ways },
                );
                self.repartition_bandwidth(server);
                return Placement::Placed;
            }
        }

        // Line 21 + Algorithm 4: share resources if the neighbours can
        // absorb it...
        let own_cores = server.allocation(id).map(|a| a.cores.count()).unwrap_or(0);
        let idle_cores = server.idle_cores().count() + own_cores;
        let free_ways = free_way_run_after_repack(server, Some(id));
        let need_cores = prediction.oaa.cores.saturating_sub(idle_cores);
        let need_ways = prediction.oaa.ways.saturating_sub(free_ways);
        if self.algorithm_4(server, id, need_cores, need_ways) == Placement::Placed {
            return Placement::Placed;
        }
        // ...otherwise place best-effort on whatever is idle and let the
        // dynamic loop (Algorithms 2/3, Fig. 9's QoS monitor) keep working
        // the allocation toward the OAA as neighbours release resources.
        // The migration request has already been logged for the upper
        // scheduler; meanwhile the service runs as well as the machine
        // allows.
        let idle = server.idle_cores().count()
            + server.allocation(id).map(|a| a.cores.count()).unwrap_or(0);
        let free = free_way_run_after_repack(server, Some(id)).max(1);
        let cores = prediction.oaa.cores.min(idle.max(1));
        let ways = prediction.oaa.ways.min(free);
        if self.try_allocate_dedicated(server, id, cores, ways, place) {
            self.log.push(server.now(), Some(id), EventKind::Placed { cores, ways });
            self.repartition_bandwidth(server);
            Placement::Placed
        } else {
            Placement::Rejected(RejectReason::InsufficientResources)
        }
    }

    /// Model-B matching (Algorithm 1, lines 8-19): find at most
    /// `max_deprived_apps` neighbours whose B-points cover the deficit,
    /// preferring fewer victims, then less total deprivation. Transactional:
    /// victims are not left deprived if the newcomer's allocation then
    /// fails persistently.
    fn deprive_and_allocate<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        id: AppId,
        target_cores: usize,
        target_ways: usize,
        op: TraceOp,
    ) -> bool {
        self.transact(server, |this, server| {
            this.deprive_and_allocate_inner(server, id, target_cores, target_ways, op)
        })
    }

    fn deprive_and_allocate_inner<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        id: AppId,
        target_cores: usize,
        target_ways: usize,
        op: TraceOp,
    ) -> bool {
        let own = server.allocation(id).map(|a| a.cores).unwrap_or_default();
        let idle_cores = server.idle_cores().union(own).count();
        let free_ways = free_way_run_after_repack(server, Some(id));
        let need_cores = target_cores.saturating_sub(idle_cores);
        let need_ways = target_ways.saturating_sub(free_ways);
        if need_cores == 0 && need_ways == 0 {
            return self.try_allocate_dedicated(server, id, target_cores, target_ways, op);
        }

        // Line 10-15: collect every neighbour's B-points. In event mode the
        // per-victim Model-B forwards are deferred and fused into a single
        // batched pass; the substrate reads (latency, sample, allocation)
        // keep their exact per-victim order, so only pure model calls move.
        let budget = self.config.deprive_slowdown_budget;
        let event_driven = self.config.event_driven;
        let mut offers: Vec<(AppId, Vec<(usize, usize)>)> = Vec::new();
        let mut gathered: Vec<VictimCtx> = Vec::new();
        for victim in server.apps() {
            if victim == id {
                continue;
            }
            // Line 11: only victims that "can tolerate a certain QoS
            // slowdown" — a service already violating (or with no slack)
            // has nothing to give.
            if server.latency(victim).map(|l| l.qos_slack() < 0.05).unwrap_or(true) {
                continue;
            }
            let Some(vs) = self.fresh_sample(server, victim) else { continue };
            let Some(valloc) = server.allocation(victim) else { continue };
            if event_driven {
                let wide_slack =
                    server.latency(victim).map(|l| l.qos_slack() > 0.4).unwrap_or(false);
                let cores = valloc.cores.count();
                let ways = valloc.ways.count();
                let floor = self.victim_floor(victim, cores, ways, wide_slack);
                gathered.push(VictimCtx { victim, vs, cores, ways, floor, wide_slack });
                continue;
            }
            let points = {
                let _span = self.telemetry.span("model.b.predict_us");
                self.decisions.add(1);
                self.models.model_b.predict(&vs, budget)
            };
            // When the victim's *measured* slack is wide, the measurement
            // dominates the model — a service at half its latency budget
            // can afford a 15 % slowdown regardless of what the learned
            // surface says (deprivations are withdrawn if wrong).
            let wide_slack = server.latency(victim).map(|l| l.qos_slack() > 0.4).unwrap_or(false);
            let floor =
                self.victim_floor(victim, valloc.cores.count(), valloc.ways.count(), wide_slack);
            let usable = self.usable_offer(
                &points,
                &vs,
                valloc.cores.count(),
                valloc.ways.count(),
                floor,
                wide_slack,
                budget,
            );
            offers.push((victim, usable));
        }
        if event_driven && !gathered.is_empty() {
            // One fused Model-B forward over every victim's feature row.
            {
                let scratch = &mut self.scratch;
                scratch.inputs.reset(gathered.len(), MODEL_B_INPUTS);
                for (r, ctx) in gathered.iter().enumerate() {
                    write_model_b_input(&ctx.vs, budget, scratch.inputs.row_mut(r));
                }
                let _span = self.telemetry.span("model.b.predict_us");
                self.models.model_b.predict_batch_into(
                    &scratch.inputs,
                    &mut scratch.s1,
                    &mut scratch.s2,
                    &mut scratch.b_points,
                );
            }
            self.decisions.add(gathered.len() as u64);
            let points_batch = std::mem::take(&mut self.scratch.b_points);
            for (ctx, points) in gathered.iter().zip(&points_batch) {
                let usable = self.usable_offer(
                    points,
                    &ctx.vs,
                    ctx.cores,
                    ctx.ways,
                    ctx.floor,
                    ctx.wide_slack,
                    budget,
                );
                offers.push((ctx.victim, usable));
            }
            self.scratch.b_points = points_batch;
        }

        // Lines 16-17: best-fit search over subsets of ≤ 3 victims, each
        // contributing one of its three B-points.
        let best = best_fit_combo(&offers, need_cores, need_ways, self.config.max_deprived_apps);
        let Some(combo) = best else { return false };

        // Execute the deprivations. Each is registered as a pending
        // reclamation on the victim: if the victim's QoS breaks at the next
        // sample, the deprivation is withdrawn (§V-A.2: "the corresponding
        // actions will be withdrawn").
        for &(victim, (dc, dw)) in &combo {
            let Some(old) = server.allocation(victim) else { continue };
            let Some(vsample) = self.fresh_sample(server, victim) else { continue };
            let mut alloc = old;
            let keep = old.cores.count() - dc;
            alloc.cores =
                old.cores.pick_spread(server.topology(), keep).expect("keep <= current count");
            alloc.ways = old.ways.resized(-(dw as i32), server.topology().llc_ways());
            if self.apply(
                server,
                victim,
                alloc,
                TraceOp::new(ActionKind::Deprive, Provenance::ModelB),
            ) {
                self.log.push(
                    server.now(),
                    Some(victim),
                    EventKind::Deprived { cores: dc, ways: dw },
                );
                if let Some(rec) = self.records.get_mut(&victim) {
                    if rec.pending.is_none() {
                        rec.pending = Some(Pending {
                            before: vsample,
                            action: Action {
                                dcores: -(dc as i32).min(3),
                                dways: -(dw as i32).min(3),
                            },
                            kind: PendingKind::Reclaim,
                            rollback: old,
                        });
                    }
                }
            }
        }
        self.try_allocate_dedicated(server, id, target_cores, target_ways, op)
    }

    // ------------------------------------------------------------------
    // Algorithm 2: QoS violation -> Model-C growth
    // ------------------------------------------------------------------

    fn algorithm_2<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        pos: usize,
        id: AppId,
        sample: CounterSample,
    ) {
        let Some(alloc) = server.allocation(id) else { return };
        let idle_cores = server.idle_cores().count() + alloc.cores.count();
        let free_ways = free_way_run_after_repack(server, Some(id)).max(alloc.ways.count());

        // Line 4: Model-C selects an action; under a violation only growth
        // actions are eligible, and only ones the machine can actually
        // satisfy from idle resources (line 6's check, folded into the
        // action choice so Model-C never stalls on an unachievable axis).
        let blocked: Vec<Action> = self
            .records
            .get(&id)
            .map(|r| {
                r.blocked
                    .iter()
                    .filter(|&&(_, until)| until > self.ticks)
                    .map(|&(a, _)| a)
                    .collect()
            })
            .unwrap_or_default();
        let achievable = |a: Action| -> bool {
            if a.dcores < 0 || a.dways < 0 || a == Action::noop() || blocked.contains(&a) {
                return false;
            }
            let cores_ok = a.dcores == 0 || alloc.cores.count() + a.dcores as usize <= idle_cores;
            let ways_ok = a.dways == 0
                || (alloc.ways.count() + a.dways as usize).min(server.topology().llc_ways())
                    <= free_ways;
            cores_ok && ways_ok
        };
        let chosen = self.model_c_action_where(pos, &sample, achievable);
        let grow = TraceOp::new(ActionKind::Grant, Provenance::ModelC);
        if let Some(action) = chosen {
            let want_cores = alloc.cores.count() + action.dcores as usize;
            let want_ways =
                (alloc.ways.count() + action.dways as usize).min(server.topology().llc_ways());
            if self.try_allocate_dedicated(server, id, want_cores, want_ways, grow) {
                self.log.push(
                    server.now(),
                    Some(id),
                    EventKind::Grew { dcores: action.dcores, dways: action.dways },
                );
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.pending = Some(Pending {
                        before: sample,
                        action,
                        kind: PendingKind::Growth,
                        rollback: alloc,
                    });
                }
                return;
            }
        }

        // Line 8-9: idle resources cannot satisfy any growth. Ask Model-C
        // what it wants, then try to free it from neighbours through
        // Model-B (the controller "enables the ML models" on violation,
        // §VI-D-3), and finally consider sharing (Algorithm 4).
        let wanted = self
            .model_c_action_where(pos, &sample, |a| {
                a.dcores >= 0 && a.dways >= 0 && a != Action::noop()
            })
            .unwrap_or(Action { dcores: 1, dways: 1 });
        // If neighbours cannot fund Model-C's preferred step, fall back to
        // smaller ones — a single core or way still beats stalling.
        let ladder = [
            wanted,
            Action { dcores: 1, dways: 1 },
            Action { dcores: 1, dways: 0 },
            Action { dcores: 0, dways: 1 },
        ];
        let mut tried: Vec<Action> = Vec::new();
        let mut target_cores = alloc.cores.count() + wanted.dcores as usize;
        let mut target_ways =
            (alloc.ways.count() + wanted.dways as usize).min(server.topology().llc_ways());
        for step in ladder {
            if tried.contains(&step) || blocked.contains(&step) {
                continue;
            }
            tried.push(step);
            target_cores = alloc.cores.count() + step.dcores as usize;
            target_ways =
                (alloc.ways.count() + step.dways as usize).min(server.topology().llc_ways());
            if self.deprive_and_allocate(server, id, target_cores, target_ways, grow) {
                self.log.push(
                    server.now(),
                    Some(id),
                    EventKind::Grew { dcores: step.dcores, dways: step.dways },
                );
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.pending = Some(Pending {
                        before: sample,
                        action: step,
                        kind: PendingKind::Growth,
                        rollback: alloc,
                    });
                }
                return;
            }
        }
        // Sharing is the exceptional last resort (§V-A: "only enabling
        // resource sharing in exceptional cases"): require the violation to
        // have persisted before crossing the RCliff into a neighbour's
        // allocation.
        let persistent = self.records.get(&id).map(|r| r.violation_ticks >= 2).unwrap_or(false);
        if !persistent {
            return;
        }
        let need_cores = target_cores.saturating_sub(idle_cores);
        let need_ways = target_ways.saturating_sub(free_ways);
        if matches!(self.algorithm_4(server, id, need_cores, need_ways), Placement::Rejected(_)) {
            let already = self.records.get(&id).map(|r| r.migration_requested).unwrap_or(false);
            if !already {
                self.log.push(server.now(), Some(id), EventKind::MigrationRequested);
                self.decide(server.now(), Some(id), Decision::MigrationRequested);
                self.emit_trace(
                    server.now(),
                    Some(id),
                    TraceOp::new(ActionKind::MigrationRequested, Provenance::Controller),
                    None,
                    None,
                    false,
                    None,
                );
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.migration_requested = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 3: surplus -> Model-C reclamation (with rollback)
    // ------------------------------------------------------------------

    /// Returns `Some(held allocation)` when the probe was *quiescent*:
    /// every early return whose outcome is a pure function of the
    /// `(sample, latency, allocation)` observation — the proven-floor hold
    /// and the no-surplus check — with no cooldown pending and no state
    /// mutated. A quiescent return is what the event engine's dirty-set
    /// memo caches: repeating the probe on the identical observation
    /// provably repeats the return, and handing back the allocation this
    /// probe already fetched lets the memo key on it without a second
    /// substrate query. Cooldown waits, floor clears, and every action
    /// path return `None`.
    fn algorithm_3<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        pos: usize,
        id: AppId,
        sample: CounterSample,
    ) -> Option<Allocation> {
        let record = self.records.get(&id)?;
        if record.cooldown_until > self.ticks {
            return None; // waiting, not settled: the cooldown will expire
        }
        // A proven floor silences probing while the workload is unchanged.
        if let Some((fc, fw, cpu)) = record.reclaim_floor {
            let same_load = (sample.cpu_usage - cpu).abs() <= 0.15 * cpu.max(0.5);
            let held = server.allocation(id);
            let at_floor =
                held.map(|a| a.cores.count() <= fc && a.ways.count() <= fw).unwrap_or(false);
            if same_load && at_floor {
                return held; // at_floor implies the allocation exists
            }
            if !same_load {
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.reclaim_floor = None;
                }
            }
        }
        let record = self.records.get(&id)?;
        let cliff = record.prediction.rcliff;
        let alloc = server.allocation(id)?;
        let margin = self.config.surplus_margin;
        // Line 2: only for dimensions exceeding RCliff + margin (a service
        // can be core-surplus while way-tight, and vice versa).
        let cores_surplus = alloc.cores.count() > cliff.cores + margin;
        let ways_surplus = alloc.ways.count() > cliff.ways + margin;
        if !cores_surplus && !ways_surplus {
            // Quiescent even if a stale floor was cleared above: the clear
            // already landed, so re-running this probe on the identical
            // observation is a pure no-op ending right here.
            return Some(alloc);
        }
        let action = self
            .model_c_action_where(pos, &sample, |a| {
                a.dcores <= 0
                    && a.dways <= 0
                    && a != Action::noop()
                    && (cores_surplus || a.dcores == 0)
                    && (ways_surplus || a.dways == 0)
            })
            .unwrap_or(Action {
                dcores: if cores_surplus { -1 } else { 0 },
                dways: if ways_surplus { -1 } else { 0 },
            });
        // Never reclaim below the cliff itself — and never "reclaim" upward
        // (a refreshed cliff prediction can sit above the current holding).
        let new_cores = ((alloc.cores.count() as i32 + action.dcores).max(cliff.cores as i32)
            as usize)
            .min(alloc.cores.count());
        let new_ways = ((alloc.ways.count() as i32 + action.dways).max(cliff.ways as i32) as usize)
            .min(alloc.ways.count());
        if new_cores == alloc.cores.count() && new_ways == alloc.ways.count() {
            // Not quiescent: the clamp outcome depends on Model-C's online
            // weights, which move between ticks — the next identical
            // observation may clamp differently.
            return None;
        }
        let rollback = alloc;
        let mut shrunk = alloc;
        shrunk.cores =
            alloc.cores.pick_spread(server.topology(), new_cores).expect("shrinking own cores");
        shrunk.ways = alloc
            .ways
            .resized(new_ways as i32 - alloc.ways.count() as i32, server.topology().llc_ways());
        if self.apply(server, id, shrunk, TraceOp::new(ActionKind::Reclaim, Provenance::ModelC)) {
            self.log.push(
                server.now(),
                Some(id),
                EventKind::Reclaimed { dcores: action.dcores, dways: action.dways },
            );
            if let Some(rec) = self.records.get_mut(&id) {
                rec.pending =
                    Some(Pending { before: sample, action, kind: PendingKind::Reclaim, rollback });
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Algorithm 4: sharing across the RCliff, or migration
    // ------------------------------------------------------------------

    fn algorithm_4<S: Substrate>(
        &mut self,
        server: &mut Retrying<'_, S>,
        id: AppId,
        need_cores: usize,
        need_ways: usize,
    ) -> Placement {
        if !self.records.contains_key(&id) {
            return Placement::Rejected(RejectReason::InsufficientResources);
        }
        let Some(alloc) = server.allocation(id) else {
            return Placement::Rejected(RejectReason::InsufficientResources);
        };
        // Line 1's deficit is computed by the caller (from Model-A at
        // placement, from Model-C's request in the dynamic loop). Nothing
        // to share means sharing cannot help.
        if need_cores == 0 && need_ways == 0 {
            return Placement::Rejected(RejectReason::InsufficientResources);
        }
        let target = self.records.get(&id).expect("checked above").prediction.oaa;

        // Core time-sharing between latency-critical services collapses both
        // (split cycles plus context switches), so sharing is LLC-way only —
        // the flexibility the paper emphasizes ("OSML allows flexible
        // sharing [of] some of the LLC ways among microservices", §VI-B). A
        // core deficit that idle resources cannot cover means migration.
        if need_cores > 0 {
            return Placement::Rejected(RejectReason::InsufficientResources);
        }
        // Sharing is a last-resort nudge, not a rescue for a deeply
        // overloaded service (those need migration), and never a landgrab.
        let deep_overload =
            server.latency(id).map(|l| l.p95_ms > 10.0 * l.qos_target_ms).unwrap_or(false);
        if need_ways > 6 || deep_overload {
            return Placement::Rejected(RejectReason::InsufficientResources);
        }

        // Lines 2-5: price sharing with each potential neighbour via
        // Model-B′. In event mode the per-neighbour forwards are fused into
        // one batched pass; the substrate reads keep their per-neighbour
        // order and the selection rule (strict `<`, first wins on ties) is
        // unchanged, so both modes pick the same neighbour.
        let mut best: Option<(AppId, f64)> = None;
        let mut cands: Vec<(AppId, CounterSample)> = Vec::new();
        for neighbor in server.apps() {
            if neighbor == id {
                continue;
            }
            // Only neighbours with QoS slack can absorb a slowdown.
            if server.latency(neighbor).map(|l| l.qos_slack() < 0.05).unwrap_or(true) {
                continue;
            }
            let Some(ns) = self.fresh_sample(server, neighbor) else { continue };
            let Some(nalloc) = server.allocation(neighbor) else { continue };
            if nalloc.ways.count() <= need_ways {
                continue;
            }
            if self.config.event_driven {
                cands.push((neighbor, ns));
                continue;
            }
            let slowdown = self.price_slowdown(&ns, 0, need_ways);
            if best.is_none_or(|(_, s)| slowdown < s) {
                best = Some((neighbor, slowdown));
            }
        }
        if !cands.is_empty() {
            {
                let scratch = &mut self.scratch;
                scratch.inputs.reset(cands.len(), MODEL_B_PRIME_INPUTS);
                for (r, (_, ns)) in cands.iter().enumerate() {
                    write_model_b_prime_input(ns, 0, need_ways, scratch.inputs.row_mut(r));
                }
                let _span = self.telemetry.span("model.b_prime.predict_us");
                self.models.model_b_prime.predict_batch_into(
                    &scratch.inputs,
                    &mut scratch.s1,
                    &mut scratch.s2,
                    &mut scratch.prices,
                );
            }
            self.decisions.add(cands.len() as u64);
            for ((neighbor, _), &slowdown) in cands.iter().zip(&self.scratch.prices) {
                if best.is_none_or(|(_, s)| slowdown < s) {
                    best = Some((*neighbor, slowdown));
                }
            }
        }

        // Lines 6-10: share if acceptable, else migrate.
        match best {
            Some((neighbor, slowdown)) if slowdown <= self.config.sharing_slowdown_budget => {
                let mut shared = alloc;
                // Cores come only from the service's own holding plus idle.
                // The holding can still be the bootstrap allocation, which
                // may overlap neighbours — under `strict_overlap` cores
                // another service holds are excluded (same rule as
                // `pick_cores`).
                let mut own = alloc.cores;
                if self.strict_overlap() {
                    for other in server.apps() {
                        if other != id {
                            if let Some(a) = server.allocation(other) {
                                own = own.difference(a.cores);
                            }
                        }
                    }
                }
                shared.cores = own.union(server.idle_cores());
                // Share ways: overlap the neighbour's mask by `need_ways`
                // (grow toward it after placing our mask adjacent).
                let repack = repack_ways_with_last(server, Some(neighbor));
                self.note_repack(server.now(), &repack.moves);
                let nalloc = server.allocation(neighbor).expect("neighbor is placed");
                let overlap_first = nalloc.ways.first();
                let own_ways =
                    alloc.ways.count().max(target.ways.saturating_sub(need_ways)).min(target.ways);
                let start = overlap_first.saturating_sub(own_ways);
                let len = (own_ways + need_ways)
                    .min(target.ways + need_ways)
                    .min(server.topology().llc_ways() - start);
                if let Ok(mask) = WayMask::contiguous(start, len.max(1)) {
                    shared.ways = mask;
                }
                // Re-proposing the current allocation would be a no-op spin,
                // not a scheduling action.
                if shared == server.allocation(id).expect("id is placed") {
                    return Placement::Rejected(RejectReason::InsufficientResources);
                }
                if self.apply(
                    server,
                    id,
                    shared,
                    TraceOp::new(ActionKind::Share, Provenance::ModelBPrime),
                ) {
                    self.log.push(
                        server.now(),
                        Some(id),
                        EventKind::SharingEnabled { neighbor, cores: need_cores, ways: need_ways },
                    );
                    self.repartition_bandwidth(server);
                    return Placement::Placed;
                }
                Placement::Rejected(RejectReason::InsufficientResources)
            }
            _ => {
                self.log.push(server.now(), Some(id), EventKind::MigrationRequested);
                self.decide(server.now(), Some(id), Decision::MigrationRequested);
                self.emit_trace(
                    server.now(),
                    Some(id),
                    TraceOp::new(ActionKind::MigrationRequested, Provenance::Controller),
                    None,
                    None,
                    false,
                    None,
                );
                Placement::Rejected(RejectReason::InsufficientResources)
            }
        }
    }

    // ------------------------------------------------------------------
    // Heuristic fallback (QoS watchdog quarantine)
    // ------------------------------------------------------------------

    /// The conservative policy driving a quarantined service: one-step
    /// grant toward the stored OAA from idle resources only. No model is
    /// consulted, no neighbour is deprived, nothing is reclaimed — under a
    /// misbehaving platform the safe direction is toward the allocation
    /// Model-A considered sufficient, one unit at a time.
    fn heuristic_grow<S: Substrate>(&mut self, server: &mut Retrying<'_, S>, id: AppId) {
        let Some(alloc) = server.allocation(id) else { return };
        let Some(record) = self.records.get(&id) else { return };
        let oaa = record.prediction.oaa;
        let idle_cores = server.idle_cores().count() + alloc.cores.count();
        let free_ways = free_way_run_after_repack(server, Some(id)).max(alloc.ways.count());
        let cur_cores = alloc.cores.count();
        let cur_ways = alloc.ways.count();
        let want_cores = (cur_cores + 1).min(oaa.cores.max(cur_cores)).min(idle_cores);
        let want_ways = (cur_ways + 1).min(oaa.ways.max(cur_ways)).min(free_ways);
        if want_cores <= cur_cores && want_ways <= cur_ways {
            return;
        }
        let (want_cores, want_ways) = (want_cores.max(cur_cores), want_ways.max(cur_ways));
        let op = TraceOp::new(ActionKind::Grant, Provenance::Heuristic);
        if self.try_allocate_dedicated(server, id, want_cores, want_ways, op) {
            self.log.push(
                server.now(),
                Some(id),
                EventKind::Grew {
                    dcores: (want_cores as i32) - (cur_cores as i32),
                    dways: (want_ways as i32) - (cur_ways as i32),
                },
            );
        }
    }

    /// Completes a pending Model-C observation: builds the
    /// `<Status, Action, Reward, Status'>` tuple, trains online, and
    /// withdraws actions that did not pay off — reclamations that broke QoS
    /// (Algorithm 3, lines 7-9) and growths that burned resources without
    /// improving a still-violating service.
    /// A pending action's rollback image can be stale by the time it is
    /// applied: cores the service gave up may since have been granted to a
    /// neighbour (a deprivation funding a newcomer, a brownout shave). The
    /// conflicting cores are repicked from what is actually free; a
    /// conflict-free rollback passes through bit-identical. Only active
    /// under [`Self::strict_overlap`] — see there for why.
    fn sanitized_rollback<S: Substrate>(
        &self,
        server: &Retrying<'_, S>,
        id: AppId,
        rollback: Allocation,
    ) -> Allocation {
        if !self.strict_overlap() {
            return rollback;
        }
        let mut taken = CoreSet::default();
        for other in server.apps() {
            if other != id {
                if let Some(a) = server.allocation(other) {
                    taken = taken.union(a.cores);
                }
            }
        }
        if !rollback.cores.overlaps(taken) {
            return rollback;
        }
        let keep = rollback.cores.difference(taken);
        let pool = keep.union(server.idle_cores());
        let want = rollback.cores.count().min(pool.count()).max(1);
        let mut out = rollback;
        out.cores = pool.pick_spread(server.topology(), want).unwrap_or(keep);
        out
    }

    fn settle_pending<S: Substrate>(&mut self, server: &mut Retrying<'_, S>, id: AppId) {
        let Some(record) = self.records.get_mut(&id) else { return };
        let Some(pending) = record.pending.take() else { return };
        let Some(after) = self.fresh_sample(server, id) else { return };
        {
            let _span = self.telemetry.span("model.c.observe_us");
            self.models.model_c.observe(&pending.before, pending.action, &after);
        }
        if self.config.online_learning {
            let _span = self.telemetry.span("model.c.train_us");
            self.models.model_c.train_step();
        }
        let violated = server.latency(id).map(|l| guarded_violation(&l)).unwrap_or(false);
        let rollback_op = TraceOp::new(ActionKind::Rollback, Provenance::Controller);
        let rollback = self.sanitized_rollback(server, id, pending.rollback);
        match pending.kind {
            PendingKind::Reclaim => {
                if violated && self.apply(server, id, rollback, rollback_op) {
                    self.log.push(server.now(), Some(id), EventKind::RolledBack);
                    // While the platform is misbehaving, a reclaim that
                    // broke QoS counts against the model path: the decision
                    // was made on suspect data.
                    let strike = self.platform_unhealthy(server.now());
                    let until = self.ticks + RECLAIM_COOLDOWN_TICKS;
                    if let Some(rec) = self.records.get_mut(&id) {
                        if strike {
                            rec.failed_ml_actions += 1;
                        }
                        rec.cooldown_until = until;
                        // This holding is proven minimal for the current
                        // load: stop probing until the workload changes.
                        rec.reclaim_floor = Some((
                            rollback.cores.count(),
                            rollback.ways.count(),
                            pending.before.cpu_usage,
                        ));
                    }
                    if self.config.event_driven {
                        self.timers.schedule(until, TimerEvent::CooldownExpiry(id));
                    }
                }
            }
            PendingKind::Growth => {
                if !self.config.withdraw_ineffective_growth {
                    return;
                }
                let improved = after.response_latency_ms
                    < pending.before.response_latency_ms * GROWTH_IMPROVEMENT_FACTOR;
                if violated && !improved && self.apply(server, id, rollback, rollback_op) {
                    self.log.push(server.now(), Some(id), EventKind::RolledBack);
                    // An ineffective growth is ordinary Model-C exploration
                    // on a healthy platform, but a watchdog strike while
                    // faults are fresh — this gate is what keeps fault-free
                    // runs bit-identical to the pre-resilience controller.
                    let strike = self.platform_unhealthy(server.now());
                    let until = self.ticks + BLOCKED_ACTION_TICKS;
                    if let Some(rec) = self.records.get_mut(&id) {
                        rec.blocked.push((pending.action, until));
                        if strike {
                            rec.failed_ml_actions += 1;
                        }
                    }
                    if self.config.event_driven {
                        self.timers.schedule(until, TimerEvent::BlockedExpiry(id));
                    }
                }
            }
        }
    }
}

impl AppRecord {
    /// The durable image of this record (the in-flight pending action is
    /// deliberately not captured; see [`AppSnapshot`]). Timer deadlines are
    /// stored as *remaining* ticks relative to `now_tick`, so a snapshot is
    /// meaningful whatever tick the restarted controller resumes at.
    fn to_snapshot<S: Substrate>(&self, server: &S, id: AppId, now_tick: u64) -> AppSnapshot {
        AppSnapshot {
            id: id.0,
            prediction: self.prediction,
            allocation: server.allocation(id),
            had_pending: self.pending.is_some(),
            reclaim_cooldown: self.cooldown_until.saturating_sub(now_tick) as usize,
            blocked: self
                .blocked
                .iter()
                .map(|&(a, until)| (a, until.saturating_sub(now_tick) as usize))
                .filter(|&(_, remaining)| remaining > 0)
                .collect(),
            reclaim_floor: self.reclaim_floor,
            migration_requested: self.migration_requested,
            violation_ticks: self.violation_ticks,
            last_good: self.last_good,
            failed_ml_actions: self.failed_ml_actions,
            fallback: self.fallback,
            fallback_ok_ticks: self.fallback_ok_ticks,
            class: self.class,
        }
    }

    /// Rebuilds a record from its durable image, re-anchoring the relative
    /// timer deadlines at `now_tick`.
    fn from_snapshot(snap: &AppSnapshot, now_tick: u64) -> Self {
        AppRecord {
            prediction: snap.prediction,
            pending: None, // abandoned: its "after" sample would span the outage
            cooldown_until: if snap.reclaim_cooldown == 0 {
                0
            } else {
                now_tick + snap.reclaim_cooldown as u64
            },
            blocked: snap
                .blocked
                .iter()
                .filter(|&&(_, remaining)| remaining > 0)
                .map(|&(a, remaining)| (a, now_tick + remaining as u64))
                .collect(),
            reclaim_floor: snap.reclaim_floor,
            migration_requested: snap.migration_requested,
            violation_ticks: snap.violation_ticks,
            last_good: snap.last_good,
            failed_ml_actions: snap.failed_ml_actions,
            fallback: snap.fallback,
            fallback_ok_ticks: snap.fallback_ok_ticks,
            class: snap.class,
            probe_memo: None, // recovered services are re-probed in full
        }
    }

    /// A fresh record for a service adopted during recovery (no history).
    fn adopted(prediction: OaaPrediction, last_good: Option<CounterSample>) -> Self {
        AppRecord {
            prediction,
            pending: None,
            cooldown_until: 0,
            blocked: Vec::new(),
            reclaim_floor: None,
            migration_requested: false,
            violation_ticks: 0,
            last_good,
            failed_ml_actions: 0,
            fallback: false,
            fallback_ok_ticks: 0,
            class: SloClass::default(),
            probe_memo: None,
        }
    }
}

// ----------------------------------------------------------------------
// Crash recovery: durable snapshots and warm-restart reconciliation
// ----------------------------------------------------------------------

impl OsmlScheduler {
    /// Captures the controller's complete durable state at this instant.
    /// Persist it with [`RecoveryStore::save_snapshot`]; together with the
    /// write-ahead journal suffix it reconstructs the controller via
    /// [`OsmlScheduler::recover`]. Read-only: taking a snapshot never
    /// perturbs scheduling (the no-kill path stays bit-identical).
    pub fn snapshot<S: Substrate>(&self, server: &S) -> SchedulerSnapshot {
        SchedulerSnapshot {
            ticks: self.ticks,
            actions: self.actions,
            last_fault_s: self.last_fault_s,
            persistent_failures: self.persistent_failures,
            config: self.config.clone(),
            log: self.log.clone(),
            apps: self
                .records
                .iter()
                .map(|(&id, rec)| rec.to_snapshot(server, id, self.ticks))
                .collect(),
            overload: self.overload.clone(),
            unified: self.unified.clone(),
        }
    }

    /// Warm-restarts a controller after a crash: loads the most recent
    /// snapshot from `store`, replays the journal suffix, and reconciles
    /// the recovered state against the live substrate.
    ///
    /// Reconciliation rules:
    ///
    /// * a service both in the snapshot and on the substrate is **restored**
    ///   (its pending action, if any, is abandoned — settling it across the
    ///   outage would feed Model-C a reward spanning the downtime);
    /// * a service only on the substrate (launched while the controller was
    ///   down, or the snapshot predates it) is **adopted**: Model-A predicts
    ///   from its current sample, or a conservative prediction anchored at
    ///   its current allocation is used when no valid sample exists;
    /// * a snapshot record with no live service is **dropped** (departed
    ///   during the outage);
    /// * allocations that drifted are noted (the substrate is ground
    ///   truth), and layouts that are outright invalid — overlapping core
    ///   sets, malformed masks — are **repaired** from free resources.
    ///
    /// If the snapshot is missing, corrupt, checksum-damaged or from a
    /// foreign version, every running service is adopted **cold** under
    /// `config`; a verified snapshot resumes under the *snapshotted* config
    /// (a restart must not silently change policy). Model-C state is not
    /// loaded here — restore it into `models` beforehand from
    /// `osml_ml::store::ModelStore::load_agent`.
    pub fn recover<S: Substrate>(
        models: Models,
        config: OsmlConfig,
        store: &RecoveryStore,
        server: &mut S,
    ) -> (Self, RecoveryReport) {
        let (snapshot, cold_reason) = match store.load_snapshot() {
            Ok(Some(snap)) => (Some(snap), None),
            Ok(None) => (None, Some("no snapshot".to_owned())),
            Err(e) => (None, Some(e.to_string())),
        };
        let mut report = RecoveryReport {
            mode: match &cold_reason {
                None => RecoveryMode::Warm,
                Some(reason) => RecoveryMode::Cold { reason: reason.clone() },
            },
            restored: 0,
            adopted: 0,
            dropped: 0,
            pending_abandoned: 0,
            alloc_drift: 0,
            drift_repaired: 0,
            journal_replayed: 0,
        };

        let mut scheduler = match &snapshot {
            Some(snap) => {
                let mut s = OsmlScheduler::new(models, snap.config.clone());
                s.ticks = snap.ticks;
                s.actions = snap.actions;
                s.last_fault_s = snap.last_fault_s;
                s.persistent_failures = snap.persistent_failures;
                s.log = snap.log.clone();
                s.overload = snap.overload.clone();
                s.unified = snap.unified.clone();
                // Journal replay: events committed after the snapshot was
                // taken still count toward the overhead accounting, and the
                // tick counter must not run backwards. The unified event
                // journal is authoritative when it holds a suffix beyond the
                // snapshot (its sequence numbers are exact); the legacy
                // per-action journal remains the fallback for stores
                // recorded before the unified log existed.
                let restored_seq = s.unified.last_seq();
                let suffix: Vec<UnifiedEvent> = store
                    .read_unified()
                    .into_iter()
                    .filter(|ev| restored_seq.is_none_or(|last| ev.seq > last))
                    .collect();
                if suffix.is_empty() {
                    for rec in store.read_journal() {
                        if rec.tick > snap.ticks {
                            report.journal_replayed += 1;
                            if rec.counts_as_action {
                                s.actions += 1;
                            }
                            s.ticks = s.ticks.max(rec.tick);
                        }
                    }
                } else {
                    for ev in suffix {
                        report.journal_replayed += 1;
                        if let EventBody::Decision(Decision::Alloc {
                            counts_as_action: true, ..
                        }) = &ev.body
                        {
                            s.actions += 1;
                        }
                        s.ticks = s.ticks.max(ev.tick);
                        s.unified.push_restored(ev);
                    }
                }
                s
            }
            None => OsmlScheduler::new(models, config),
        };

        // Reconcile against the live substrate.
        let mut snap_apps: BTreeMap<u64, AppSnapshot> = snapshot
            .map(|snap| snap.apps.into_iter().map(|a| (a.id, a)).collect())
            .unwrap_or_default();
        let mut live = server.apps();
        live.sort_by_key(|id| id.0);
        for &id in &live {
            match snap_apps.remove(&id.0) {
                Some(app) => {
                    if app.had_pending {
                        report.pending_abandoned += 1;
                    }
                    if app.allocation.is_some() && app.allocation != server.allocation(id) {
                        report.alloc_drift += 1;
                    }
                    scheduler.records.insert(id, AppRecord::from_snapshot(&app, scheduler.ticks));
                    report.restored += 1;
                }
                None => {
                    let sample = server.sample(id).filter(CounterSample::is_valid);
                    let prediction = match &sample {
                        Some(s) => {
                            scheduler.decisions.add(1);
                            scheduler.models.model_a.predict(s)
                        }
                        None => Self::conservative_prediction(server.allocation(id)),
                    };
                    scheduler.records.insert(id, AppRecord::adopted(prediction, sample));
                    report.adopted += 1;
                }
            }
        }
        report.dropped = snap_apps.len();

        // Sanitize overload state against the restart: the in-flight retry
        // (and any shed withdrawal the harness never executed) died with the
        // crash, and a "waiting" ticket whose service is in fact live was
        // adopted above — its seat is stale.
        scheduler.overload.in_flight = None;
        scheduler.overload.suppress_credit_for = None;
        scheduler.overload.pending_shed.clear();
        scheduler.overload.last_idle = None;
        scheduler.overload.queue.retain(|e| !live.iter().any(|id| id.0 == e.ticket));
        scheduler.overload.shed.retain(|e| !live.iter().any(|id| id.0 == e.ticket));
        scheduler.overload.shaved.retain(|s| live.iter().any(|id| id.0 == s.app));

        // Continue the durable unified journal (the restored prefix is
        // already on disk; only events from here on are mirrored), then
        // record the restart itself: the crash is a world fact, the
        // reconciliation outcome a decision. The Restarted decision is
        // emitted *before* the repair Allocs so the replay fold applies the
        // restart retains first, exactly as the live path just did.
        let unified_path = store.unified_path();
        if unified_path.exists() {
            let _ = scheduler.attach_unified_journal(&unified_path);
        }
        let now = server.now();
        scheduler.record_world(now, None, WorldFact::ControllerCrashed);
        scheduler.decide(
            now,
            None,
            Decision::Restarted {
                warm: cold_reason.is_none(),
                restored: report.restored,
                adopted: report.adopted,
                dropped: report.dropped,
            },
        );
        scheduler.repair_layout(server, &mut report);
        scheduler.rebuild_timers();
        scheduler.log.push(
            server.now(),
            None,
            EventKind::Restarted {
                warm: cold_reason.is_none(),
                restored: report.restored,
                adopted: report.adopted,
                dropped: report.dropped,
            },
        );
        (scheduler, report)
    }

    /// A prediction for an adopted service whose counters are unusable:
    /// anchor the OAA at what it currently holds (assume the dead
    /// controller knew what it was doing) and place the RCliff at half of
    /// that, so neither growth nor reclamation acts aggressively until real
    /// samples arrive.
    fn conservative_prediction(alloc: Option<Allocation>) -> OaaPrediction {
        let (cores, ways) =
            alloc.map(|a| (a.cores.count().max(1), a.ways.count().max(1))).unwrap_or((2, 2));
        OaaPrediction::new(
            AllocPoint::new(cores, ways),
            1.0,
            AllocPoint::new((cores / 2).max(1), (ways / 2).max(1)),
        )
    }

    /// Repairs layouts that drifted into invalidity while the controller
    /// was down: malformed or out-of-range masks, empty core sets, and
    /// core sets overlapping another service's. Walks services in id order,
    /// keeps the first claimant of contested cores, and moves later
    /// claimants onto free cores (way overlap is legal — LLC sharing).
    fn repair_layout<S: Substrate>(&mut self, server: &mut S, report: &mut RecoveryReport) {
        let topo = server.topology().clone();
        let mut ids = server.apps();
        ids.sort_by_key(|id| id.0);
        let mut used = CoreSet::new();
        for &id in &ids {
            let Some(alloc) = server.allocation(id) else { continue };
            let cores_bad = alloc.cores.is_empty()
                || alloc.cores.validate(&topo).is_err()
                || alloc.cores.overlaps(used);
            let ways_bad = alloc.ways.validate(&topo).is_err();
            if !cores_bad && !ways_bad {
                used = used.union(alloc.cores);
                continue;
            }
            // Rebuild the broken half from resources no other service holds.
            let mut free = CoreSet::all(&topo).difference(used);
            for &other in &ids {
                if other != id {
                    if let Some(a) = server.allocation(other) {
                        free = free.difference(a.cores);
                    }
                }
            }
            let cores = if cores_bad {
                let want = alloc.cores.count().clamp(1, free.count().max(1));
                free.pick_spread(&topo, want.min(free.count()))
                    .filter(|c| !c.is_empty())
                    .or_else(|| free.iter().next().map(|c| CoreSet::from_cores([c])))
                    .unwrap_or(alloc.cores) // machine full: nothing to give
            } else {
                alloc.cores
            };
            let ways = if ways_bad { WayMask::first_n(2.min(topo.llc_ways())) } else { alloc.ways };
            let repaired = Allocation::new(cores, ways, alloc.mba);
            if repaired != alloc && server.reallocate(id, repaired).is_ok() {
                report.drift_repaired += 1;
                self.decide(
                    server.now(),
                    Some(id),
                    Decision::Alloc {
                        kind: ActionKind::Repair,
                        provenance: Provenance::Controller,
                        pre: Some(alloc),
                        post: repaired,
                        counts_as_action: false,
                    },
                );
                used = used.union(repaired.cores);
            } else {
                used = used.union(alloc.cores);
            }
        }
    }
}

impl Scheduler for OsmlScheduler {
    fn name(&self) -> &'static str {
        "osml"
    }

    fn on_arrival<S: Substrate>(&mut self, server: &mut S, id: AppId) -> Placement {
        self.on_arrival_classed(server, id, SloClass::default())
    }

    fn on_arrival_classed<S: Substrate>(
        &mut self,
        server: &mut S,
        id: AppId,
        class: SloClass,
    ) -> Placement {
        let mut server = Retrying::new(
            server,
            self.config.actuation_retry_budget,
            self.config.retry_backoff_base_ms,
            self.config.max_backoff_ms,
        );
        let retry_of = self.overload.in_flight.take();
        let placement = self.algorithm_1(&mut server, id);
        self.note_faults(&mut server);
        if let Some(rec) = self.records.get_mut(&id) {
            rec.class = class;
        }
        let now = server.now();
        match placement {
            Placement::Placed => {
                if let Some(ticket) = retry_of {
                    let alloc = server.allocation(id);
                    self.settle_admitted(now, ticket, id, alloc);
                }
                Placement::Placed
            }
            Placement::Rejected(reason) => self.admission_decide(now, id, class, reason, retry_of),
            deferred @ Placement::Deferred { .. } => deferred, // algorithm_1 never defers
        }
    }

    fn tick<S: Substrate>(&mut self, server: &mut S) {
        let mut server = Retrying::new(
            server,
            self.config.actuation_retry_budget,
            self.config.retry_backoff_base_ms,
            self.config.max_backoff_ms,
        );
        let server = &mut server;
        self.ticks += 1;
        self.telemetry.counter_add("scheduler.ticks", 1);
        let tick_now = server.now();
        self.record_world(tick_now, None, WorldFact::TickElapsed);
        if self.config.event_driven {
            // Timer wheel: only deadlines actually due this tick pop; idle
            // services cost nothing.
            self.drain_due_timers();
        } else {
            // Legacy scan, rephrased over absolute deadlines: a record with
            // no armed timer is skipped without touching its fields, fixing
            // the per-record decrement walk that wrote every record every
            // tick. Deadlines are authoritative, so "GC" here is just
            // clearing expired entries.
            for record in self.records.values_mut() {
                if record.cooldown_until == 0 && record.blocked.is_empty() {
                    continue;
                }
                if record.cooldown_until <= self.ticks {
                    record.cooldown_until = 0;
                }
                record.blocked.retain(|&(_, until)| until > self.ticks);
            }
        }
        let actions_before = self.actions;
        let ids = server.apps();
        if self.config.event_driven && ids.len() >= BATCH_FLEET_MIN {
            self.batch_model_a_refresh(server, &ids);
            self.batch_model_c_prepass(&ids);
        } else {
            // Small fleets (or scan mode) take the scalar in-loop paths,
            // which are bit-identical by construction. Both caches must be
            // cleared: entries are only `take`n/validated when consumed, so
            // a stale row from an earlier tick could otherwise alias.
            self.scratch.pred_by_pos.clear();
            self.scratch.c_by_pos.clear();
        }
        for (pos, &id) in ids.iter().enumerate() {
            self.settle_pending(server, id);
            let Some(lat) = server.latency(id) else { continue };
            if !self.records.contains_key(&id) {
                continue; // not yet through Algorithm 1
            }
            let Some(sample) = self.fresh_sample(server, id) else {
                continue; // no valid window yet (dropped since arrival)
            };
            // Dirty-set probe (event mode): a service whose counters,
            // latency and layout all match its memoized quiescent probe
            // would provably repeat it — same Model-A refresh output, same
            // Algorithm 3 early return, no state change — so skip the body.
            // The substrate call sequence up to here (latency + sample) is
            // exactly the scan engine's, so fault streams stay aligned.
            if self.config.event_driven {
                if let Some(rec) = self.records.get_mut(&id) {
                    match &rec.probe_memo {
                        Some(m)
                            if m.sample == sample
                                && m.lat == lat
                                && Some(m.alloc) == server.allocation(id) =>
                        {
                            continue;
                        }
                        Some(_) => rec.probe_memo = None,
                        None => {}
                    }
                }
            }
            let now = server.now();
            let unhealthy = self.platform_unhealthy(now);
            // QoS watchdog: too many failed (or, under a misbehaving
            // platform, ineffective) ML actions quarantine the model path.
            let record = self.records.get_mut(&id).expect("checked above");
            if !record.fallback && record.failed_ml_actions >= self.config.fallback_threshold {
                record.fallback = true;
                record.fallback_ok_ticks = 0;
                let failures = record.failed_ml_actions;
                self.log.push(now, Some(id), EventKind::FallbackEngaged { failures });
                self.decide(now, Some(id), Decision::FallbackEngaged { failures });
                self.emit_trace(
                    now,
                    Some(id),
                    TraceOp::new(ActionKind::FallbackEngaged, Provenance::Controller),
                    None,
                    None,
                    false,
                    Some(format!("failures={failures}")),
                );
            }
            let record = self.records.get_mut(&id).expect("checked above");
            if record.fallback {
                let violating = guarded_violation(&lat);
                if !violating && !unhealthy {
                    record.fallback_ok_ticks += 1;
                    if record.fallback_ok_ticks >= self.config.fallback_recovery_ticks {
                        let healthy_ticks = record.fallback_ok_ticks;
                        record.fallback = false;
                        record.failed_ml_actions = 0;
                        record.fallback_ok_ticks = 0;
                        record.violation_ticks = 0;
                        self.log.push(now, Some(id), EventKind::Recovered { healthy_ticks });
                        self.decide(now, Some(id), Decision::FallbackRecovered { healthy_ticks });
                        self.emit_trace(
                            now,
                            Some(id),
                            TraceOp::new(ActionKind::Recovered, Provenance::Controller),
                            None,
                            None,
                            false,
                            Some(format!("healthy_ticks={healthy_ticks}")),
                        );
                    }
                } else {
                    record.fallback_ok_ticks = 0;
                    if violating {
                        record.violation_ticks += 1;
                        self.heuristic_grow(server, id);
                    }
                }
                continue;
            }
            // Keep Model-A's view fresh: the profiling module forwards the
            // current counters every second (§V-B), so predictions made
            // from a noisy arrival sample self-correct once the service
            // runs on a dedicated allocation. In event mode the prediction
            // usually comes out of the batched pre-pass; the scalar path
            // remains as the fallback for anything the gather could not
            // anticipate (e.g. a pending action settled moments ago), and
            // both decode identically.
            if record.pending.is_none() {
                record.prediction =
                    match self.scratch.pred_by_pos.get_mut(pos).and_then(Option::take) {
                        Some((pred, gathered)) if gathered == sample => pred,
                        _ => {
                            let _span = self.telemetry.span("model.a.predict_us");
                            self.decisions.add(1);
                            self.models.model_a.predict(&sample)
                        }
                    };
            }
            if guarded_violation(&lat) {
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.violation_ticks += 1;
                }
                self.algorithm_2(server, pos, id, sample);
            } else {
                if let Some(rec) = self.records.get_mut(&id) {
                    rec.migration_requested = false;
                    rec.violation_ticks = 0;
                    // QoS met through the ML path: the action streak is
                    // healthy again.
                    rec.failed_ml_actions = 0;
                }
                let quiescent = self.algorithm_3(server, pos, id, sample);
                // Memoize a quiescent probe (event mode only; scan stays
                // the pure reference). Preconditions beyond quiescence:
                // nothing pending (so `settle_pending` is a no-op with zero
                // substrate calls next tick) and the ML path healthy. The
                // resets above ran *before* this point, so the memoized
                // record has `violation_ticks == 0`, `migration_requested ==
                // false`, `failed_ml_actions == 0` — re-running them is a
                // no-op too. Algorithm 3 hands back the allocation it
                // already fetched, so the memo costs no extra query.
                if self.config.event_driven {
                    if let Some(alloc) = quiescent {
                        if let Some(rec) = self.records.get_mut(&id) {
                            rec.probe_memo = (!rec.fallback && rec.pending.is_none())
                                .then_some(ProbeMemo { sample, lat, alloc });
                        }
                    }
                }
            }
        }
        self.overload_control(server);
        if self.actions != actions_before {
            self.repartition_bandwidth(server);
        }
        self.note_faults(server);
        if self.telemetry.is_enabled() {
            self.telemetry.gauge_set("scheduler.actions_total", self.actions as f64);
            self.telemetry.gauge_set("scheduler.services", self.records.len() as f64);
            self.telemetry.gauge_set("scheduler.pending_timers", self.timers.len() as f64);
            self.telemetry.gauge_set("scheduler.time_s", server.now());
        }
    }

    fn on_departure(&mut self, id: AppId) {
        self.records.remove(&id);
        if !self.config.overload.is_enabled() {
            return;
        }
        self.overload.shaved.retain(|s| s.app != id.0);
        if self.overload.suppress_credit_for == Some(id.0) {
            // A just-deferred arrival (or failed retry) being withdrawn:
            // its departure frees only its own bootstrap allocation.
            self.overload.suppress_credit_for = None;
            return;
        }
        if !self.overload.queue.is_empty() || !self.overload.shed.is_empty() {
            // A real departure is the queue's primary retry signal.
            self.overload.bank_credit();
        }
    }

    fn action_count(&self) -> usize {
        self.actions
    }

    fn decision_count(&self) -> u64 {
        self.decisions.get()
    }
}

/// One victim's accepted offer in a sharing combo: `(victim, (cores, ways))`.
type ComboShare = (AppId, (usize, usize));

/// Best-fit subset search (Algorithm 1, line 17): choose ≤ `max_apps`
/// victims and one B-point each so the summed offer covers
/// `(need_cores, need_ways)`, minimizing victim count then total
/// deprivation.
fn best_fit_combo(
    offers: &[(AppId, Vec<(usize, usize)>)],
    need_cores: usize,
    need_ways: usize,
    max_apps: usize,
) -> Option<Vec<ComboShare>> {
    let mut best: Option<(usize, usize, Vec<ComboShare>)> = None;
    let n = offers.len();
    // Enumerate subsets of size 1..=max_apps (n is small: co-located
    // services number in the single digits).
    let mut consider = |combo: &[ComboShare]| {
        let got_c: usize = combo.iter().map(|(_, (c, _))| c).sum();
        let got_w: usize = combo.iter().map(|(_, (_, w))| w).sum();
        if got_c >= need_cores && got_w >= need_ways {
            let total = got_c + got_w;
            let key = (combo.len(), total);
            if best.as_ref().is_none_or(|(l, t, _)| key < (*l, *t)) {
                best = Some((combo.len(), total, combo.to_vec()));
            }
        }
    };
    let mut stack: Vec<ComboShare> = Vec::new();
    fn recurse(
        offers: &[(AppId, Vec<(usize, usize)>)],
        start: usize,
        max_apps: usize,
        stack: &mut Vec<ComboShare>,
        consider: &mut impl FnMut(&[ComboShare]),
    ) {
        if !stack.is_empty() {
            consider(stack);
        }
        if stack.len() == max_apps {
            return;
        }
        for i in start..offers.len() {
            let (id, points) = &offers[i];
            for &p in points {
                stack.push((*id, p));
                recurse(offers, i + 1, max_apps, stack, consider);
                stack.pop();
            }
        }
    }
    recurse(offers, 0, max_apps.min(n.max(1)), &mut stack, &mut consider);
    best.map(|(_, _, combo)| combo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
    use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};

    fn offer(id: u64, points: &[(usize, usize)]) -> (AppId, Vec<(usize, usize)>) {
        (AppId(id), points.to_vec())
    }

    /// An untrained (but structurally valid) scheduler for plumbing tests.
    fn raw() -> OsmlScheduler {
        OsmlScheduler::new(
            Models {
                model_a: ModelA::new(36, 20, 1),
                model_b: ModelB::new(36, 20, 2),
                model_b_prime: ModelBPrime::new(3),
                model_c: ModelC::new(4),
            },
            OsmlConfig::default(),
        )
    }

    fn server_with(service: Service, pct: f64) -> (SimServer, AppId) {
        let mut server =
            SimServer::new(SimConfig { noise_sigma: 0.0, seed: 1, ..SimConfig::default() });
        let alloc = crate::bootstrap::bootstrap_allocation(&mut server, 8);
        let id = server.launch(LaunchSpec::at_percent_load(service, pct), alloc).unwrap();
        server.advance(1.0);
        (server, id)
    }

    #[test]
    fn arrival_profiles_and_places() {
        let mut sched = raw();
        let (mut server, id) = server_with(Service::Login, 20.0);
        assert_eq!(sched.on_arrival(&mut server, id), Placement::Placed);
        assert!(sched.prediction(id).is_some());
        assert!(sched.action_count() >= 1);
        assert!(sched.log().entries().iter().any(|e| matches!(e.kind, EventKind::Profiled { .. })));
        // Sampling window advanced the clock.
        assert!(server.now() >= 3.0 - 1e-9);
    }

    #[test]
    fn departure_clears_controller_state() {
        let mut sched = raw();
        let (mut server, id) = server_with(Service::Ads, 20.0);
        sched.on_arrival(&mut server, id);
        assert!(sched.prediction(id).is_some());
        sched.on_departure(id);
        assert!(sched.prediction(id).is_none());
    }

    #[test]
    fn ticks_only_manage_profiled_services() {
        let mut sched = raw();
        let (mut server, _id) = server_with(Service::Login, 20.0);
        // Never called on_arrival: ticks must not touch the service.
        let before = sched.action_count();
        for _ in 0..5 {
            server.advance(1.0);
            sched.tick(&mut server);
        }
        assert_eq!(sched.action_count(), before);
    }

    #[test]
    fn guarded_violation_keeps_headroom() {
        let lat = |p95: f64| osml_platform::LatencyStats {
            mean_ms: p95 / 3.0,
            p95_ms: p95,
            achieved_rps: 1.0,
            offered_rps: 1.0,
            qos_target_ms: 10.0,
        };
        assert!(!guarded_violation(&lat(9.0)));
        assert!(guarded_violation(&lat(9.6)));
        assert!(guarded_violation(&lat(20.0)));
    }

    #[test]
    fn with_config_replaces_tunables() {
        let sched =
            raw().with_config(OsmlConfig { sampling_window_s: 0.5, ..OsmlConfig::default() });
        // Observable through arrival behaviour: a 0.5 s window advances the
        // clock by 0.5 s instead of 2 s.
        let mut sched = sched;
        let (mut server, id) = server_with(Service::Login, 20.0);
        let before = server.now();
        sched.on_arrival(&mut server, id);
        assert!((server.now() - before - 0.5).abs() < 1e-9);
    }

    #[test]
    fn best_fit_prefers_fewer_victims() {
        let offers = [offer(1, &[(2, 2)]), offer(2, &[(2, 2)]), offer(3, &[(4, 4)])];
        let combo = best_fit_combo(&offers, 3, 3, 3).unwrap();
        assert_eq!(combo.len(), 1);
        assert_eq!(combo[0].0, AppId(3));
    }

    #[test]
    fn best_fit_minimizes_total_deprivation_among_equals() {
        let offers = [offer(1, &[(6, 6), (4, 4)]), offer(2, &[(10, 10)])];
        let combo = best_fit_combo(&offers, 4, 4, 3).unwrap();
        assert_eq!(combo.len(), 1);
        assert_eq!(combo[0].1, (4, 4), "the tighter fitting point wins");
    }

    #[test]
    fn best_fit_combines_up_to_three() {
        let offers =
            [offer(1, &[(2, 0)]), offer(2, &[(2, 1)]), offer(3, &[(2, 2)]), offer(4, &[(1, 0)])];
        let combo = best_fit_combo(&offers, 6, 3, 3).unwrap();
        assert_eq!(combo.len(), 3);
        let c: usize = combo.iter().map(|(_, (c, _))| c).sum();
        let w: usize = combo.iter().map(|(_, (_, w))| w).sum();
        assert!(c >= 6 && w >= 3);
    }

    #[test]
    fn best_fit_respects_app_cap() {
        let offers =
            [offer(1, &[(1, 1)]), offer(2, &[(1, 1)]), offer(3, &[(1, 1)]), offer(4, &[(1, 1)])];
        // Needs all four, but only three may be involved.
        assert!(best_fit_combo(&offers, 4, 4, 3).is_none());
        assert!(best_fit_combo(&offers, 3, 3, 3).is_some());
    }

    #[test]
    fn best_fit_on_empty_offers() {
        assert!(best_fit_combo(&[], 1, 1, 3).is_none());
        // Zero need is satisfiable by any single offer.
        let offers = [offer(1, &[(0, 0)])];
        assert!(best_fit_combo(&offers, 0, 0, 3).is_some());
    }

    /// Packs the machine through the scheduler until one arrival is turned
    /// away, returning the turned-away id, its placement, and the action
    /// count read immediately before the turning-away call.
    fn pack_until_turned_away(
        sched: &mut OsmlScheduler,
        server: &mut SimServer,
    ) -> (AppId, Placement, usize) {
        for i in 0..40u64 {
            let alloc = crate::bootstrap::bootstrap_allocation(server, 8);
            let id = server
                .launch(LaunchSpec::at_percent_load(Service::Login, 30.0 + i as f64), alloc)
                .unwrap();
            server.advance(1.0);
            let actions_before = sched.action_count();
            match sched.on_arrival(server, id) {
                Placement::Placed => {}
                other => {
                    let _ = server.remove(id);
                    sched.on_departure(id);
                    return (id, other, actions_before);
                }
            }
        }
        panic!("the machine never filled up");
    }

    #[test]
    fn rejections_are_logged_traced_and_never_count_as_actions() {
        let mut sched = raw().with_telemetry(osml_telemetry::Telemetry::enabled());
        let mut server =
            SimServer::new(SimConfig { noise_sigma: 0.0, seed: 7, ..SimConfig::default() });
        // Overload disabled (the default): the turn-away must be a terminal
        // typed rejection, visible in the event log and the decision trace,
        // and must not move the action counter.
        let (rejected_id, placement, actions_before) =
            pack_until_turned_away(&mut sched, &mut server);
        assert!(matches!(placement, Placement::Rejected(_)), "expected a terminal rejection");
        assert_eq!(sched.action_count(), actions_before, "a rejection moved the action counter");
        let rejected_events = sched
            .log()
            .entries()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Rejected { .. }))
            .count();
        assert!(rejected_events >= 1, "no Rejected event was logged");
        let reject_traces: Vec<_> = sched
            .telemetry()
            .trace_records()
            .into_iter()
            .filter(|r| r.kind == ActionKind::Reject)
            .collect();
        assert!(!reject_traces.is_empty(), "no Reject record reached the decision trace");
        assert!(
            reject_traces.iter().all(|r| !r.counts_as_action),
            "a Reject trace record claimed to be an action"
        );
        assert!(reject_traces.iter().any(|r| r.app == Some(rejected_id.0)));
    }

    #[test]
    fn deferred_arrival_is_queued_and_admitted_after_capacity_frees() {
        let overload = OverloadConfig::enabled();
        let mut sched = raw().with_config(OsmlConfig { overload, ..OsmlConfig::default() });
        let mut server =
            SimServer::new(SimConfig { noise_sigma: 0.0, seed: 7, ..SimConfig::default() });
        let (_, placement, _) = pack_until_turned_away(&mut sched, &mut server);
        let Placement::Deferred { ticket } = placement else {
            panic!("with the queue enabled the turn-away must defer, got {placement:?}");
        };
        assert!(sched.is_waiting(ticket));
        assert_eq!(sched.queue_depth(), 1);
        assert!(sched
            .log()
            .entries()
            .iter()
            .any(|e| matches!(e.kind, EventKind::QueueDeferred { .. })));

        // Free capacity: retire the two largest residents. Each departure
        // banks a retry credit.
        let residents: Vec<AppId> = server.apps();
        for id in residents.into_iter().rev().take(2) {
            let _ = server.remove(id);
            sched.on_departure(id);
        }
        let polled = sched.poll_admission().expect("a departure banked a retry credit");
        assert_eq!(polled, ticket);
        let alloc = crate::bootstrap::bootstrap_allocation(&mut server, 8);
        let id = server.launch(LaunchSpec::at_percent_load(Service::Login, 30.0), alloc).unwrap();
        server.advance(1.0);
        let placement = sched.on_arrival_classed(&mut server, id, SloClass::Degradable);
        assert_eq!(placement, Placement::Placed, "the freed capacity must admit the waiter");
        assert!(!sched.is_waiting(ticket), "the admitted ticket still holds a seat");
        assert_eq!(sched.queue_depth(), 0);
        assert!(sched
            .log()
            .entries()
            .iter()
            .any(|e| matches!(e.kind, EventKind::QueueAdmitted { .. })));
    }
}

//! The event-driven core's timer wheel: a binary heap of scheduled expiries
//! keyed on the tick they fall due, with a deterministic FIFO tie-break.
//!
//! In the legacy loop every tick walks every [`AppRecord`] to decrement
//! reclaim cooldowns and blocked-action counters, and walks the admission
//! queue to find overstayed waiters — O(services) even when nothing is
//! pending. The timer wheel inverts that: when a deadline is *created*
//! (rollback cooldown armed, growth blocked, arrival queued) an expiry event
//! is scheduled at its absolute due tick, and each tick pops only the events
//! that are actually due. Idle services cost nothing per tick.
//!
//! Determinism: events are ordered by `(due, tie, order)`. `order` is a
//! per-queue monotone sequence number, so two events scheduled for the same
//! tick pop in scheduling order (FIFO). Queue-deadline events carry the
//! admission entry's own sequence number as `tie`, so same-tick admission
//! timeouts drain in queue order exactly like the legacy scan — including
//! entries whose deadline was pushed back while they were in flight.
//!
//! Events are *hints*, not state: the authoritative deadlines live on the
//! records and queue entries, and every pop re-checks them. A stale event
//! (record departed, cooldown refreshed, waiter admitted) pops and drops
//! without effect, which is what makes rebuilding the heap from a recovered
//! snapshot trivial.
//!
//! [`AppRecord`]: crate::OsmlScheduler

use osml_platform::AppId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What falls due when a scheduled tick arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerEvent {
    /// A reclaim cooldown armed by a QoS rollback runs out; the record's
    /// `cooldown_until` can be garbage-collected.
    CooldownExpiry(AppId),
    /// A blocked growth action's quarantine runs out; expired entries can be
    /// dropped from the record's blocked list.
    BlockedExpiry(AppId),
    /// An admission-queue waiter reaches its max-wait horizon and should be
    /// timed out (or re-armed if it is currently in flight).
    QueueDeadline {
        /// The waiter's ticket (raw app id of the deferred arrival).
        ticket: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    due: u64,
    /// Primary tie-break at equal `due`: the admission entry's seq for
    /// queue deadlines, the scheduling order for record timers.
    tie: u64,
    /// Unique per-queue sequence number; makes the order total.
    order: u64,
    event: TimerEvent,
}

// BinaryHeap is a max-heap; invert so the earliest (due, tie, order) pops
// first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.due, other.tie, other.order).cmp(&(self.due, self.tie, self.order))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The timer wheel. Kept empty in scan mode so the legacy configuration
/// carries no extra state.
#[derive(Debug, Clone, Default)]
pub(crate) struct TimerQueue {
    heap: BinaryHeap<Scheduled>,
    next_order: u64,
}

impl TimerQueue {
    /// Schedules a record-timer expiry (cooldown / blocked) at `due`.
    pub(crate) fn schedule(&mut self, due: u64, event: TimerEvent) {
        let order = self.next_order;
        self.next_order += 1;
        self.heap.push(Scheduled { due, tie: order, order, event });
    }

    /// Schedules a queue-deadline expiry at `due`, tie-broken by the
    /// admission entry's own sequence number so same-tick timeouts drain in
    /// queue order.
    pub(crate) fn schedule_queue_deadline(&mut self, due: u64, entry_seq: u64, ticket: u64) {
        let order = self.next_order;
        self.next_order += 1;
        self.heap.push(Scheduled {
            due,
            tie: entry_seq,
            order,
            event: TimerEvent::QueueDeadline { ticket },
        });
    }

    /// Pops the next event due at or before `now`, in `(due, tie, order)`
    /// order.
    pub(crate) fn pop_due(&mut self, now: u64) -> Option<TimerEvent> {
        if self.heap.peek().is_some_and(|s| s.due <= now) {
            self.heap.pop().map(|s| s.event)
        } else {
            None
        }
    }

    /// Drops every scheduled event (used before a rebuild from recovered
    /// state, and when switching back to scan mode).
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events (diagnostics and tests).
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_then_fifo_order() {
        let mut q = TimerQueue::default();
        q.schedule(5, TimerEvent::CooldownExpiry(AppId(1)));
        q.schedule(3, TimerEvent::CooldownExpiry(AppId(2)));
        q.schedule(3, TimerEvent::BlockedExpiry(AppId(3)));
        assert_eq!(q.pop_due(2), None);
        assert_eq!(q.pop_due(4), Some(TimerEvent::CooldownExpiry(AppId(2))));
        assert_eq!(q.pop_due(4), Some(TimerEvent::BlockedExpiry(AppId(3))));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some(TimerEvent::CooldownExpiry(AppId(1))));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn queue_deadlines_tie_break_on_entry_seq() {
        let mut q = TimerQueue::default();
        // Scheduled out of entry order (a later entry re-armed first) but
        // sharing a due tick: must pop in entry-seq order, like the scan.
        q.schedule_queue_deadline(7, 4, 40);
        q.schedule_queue_deadline(7, 2, 20);
        assert_eq!(q.pop_due(7), Some(TimerEvent::QueueDeadline { ticket: 20 }));
        assert_eq!(q.pop_due(7), Some(TimerEvent::QueueDeadline { ticket: 40 }));
    }

    #[test]
    fn clear_empties_the_wheel() {
        let mut q = TimerQueue::default();
        q.schedule(1, TimerEvent::CooldownExpiry(AppId(1)));
        q.clear();
        assert_eq!(q.pop_due(100), None);
    }
}

//! The golden-thread unified event log: one typed, versioned stream with
//! three distinct layers, sufficient for deterministic full-state replay.
//!
//! * **World facts** ([`WorldFact`]) — everything that would have happened
//!   regardless of which controller was running: scripted arrivals and
//!   departures coming due, processes launched/removed by the driver, load
//!   changes, injected platform faults, the passage of monitoring time and
//!   controller crashes.
//! * **System decisions** ([`Decision`]) — what the controller did about
//!   it: every allocation change (with model provenance and full pre/post
//!   [`Allocation`]), admission-queue transitions, brownout entry/exit,
//!   shave/shed bookkeeping, watchdog transitions and recovery.
//! * **Operational telemetry** ([`TelemetryNote`]) — plumbing observations
//!   (retries, fault sightings). Explicitly **excluded from replay**: the
//!   [`replay`] fold ignores this layer entirely, and stripping it from a
//!   log must not change the replayed state (pinned by tests).
//!
//! The sufficiency invariant: [`replay`] reconstructs the scheduler's
//! observable state — final layouts, admission queue, shed stack, shave
//! ledger, brownout flag, tick and action counters — from the world-fact +
//! decision layers alone, bit-identical to the live scheduler that emitted
//! them. The serialized form is a versioned JSONL stream whose reader
//! tolerates a torn tail (only the final line can be damaged by a crash,
//! because every event is flushed before the next is appended), which is
//! what lets the unified log subsume the write-ahead journal's role in
//! crash recovery.

use crate::admission::{QueuedEntry, ShaveRecord, ShedEntry};
use osml_platform::{Allocation, InjectedFault, RejectReason, SloClass};
use osml_telemetry::{ActionKind, Provenance};
use osml_workloads::Service;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Format version written as the JSONL header; bumped on breaking schema
/// changes so a reader never misinterprets a foreign log.
pub const UNIFIED_LOG_VERSION: u32 = 1;

/// Why the driver launched a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaunchCause {
    /// A scripted arrival (exogenous: part of the offered world).
    Scripted,
    /// An admission retry of a queued or shed ticket (endogenous: a
    /// consequence of controller decisions, re-derived on A/B replay).
    AdmissionRetry,
    /// The cluster tier re-placed the service on another node — after a
    /// node death or a QoS-violation migration (endogenous).
    Failover,
    /// A falsely-suspected node healed still hosting the replica at its
    /// current epoch, and the cluster re-adopted it instead of leaving the
    /// service evicted (endogenous).
    Readopted,
}

/// Why the driver removed a process from the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalCause {
    /// Its scripted lifetime ended (exogenous).
    ScriptedDeparture,
    /// The arrival was deferred into the admission queue and the process
    /// withdrawn until its ticket is polled back (endogenous).
    DeferredWithdrawal,
    /// The arrival was rejected terminally (endogenous).
    RejectedWithdrawal,
    /// The controller shed the service during brownout (endogenous).
    ShedWithdrawal,
    /// Its node died with it still resident; a failover re-placement, if
    /// any, follows as its own [`WorldFact::Launched`] (exogenous cause,
    /// endogenous consequence).
    NodeFailure,
    /// The cluster tier tore down the source replica after the
    /// destination launch of a migration committed (endogenous).
    Migrated,
    /// A stale-epoch ghost replica (left behind by a partition, a lost
    /// ack or a duplicated launch) was fenced off and destroyed. The
    /// authoritative replica of the same service is unaffected, so the
    /// replay fold treats this as a no-op on layouts (endogenous).
    Fenced,
}

/// Layer 1: a fact about the world. World facts are controller-independent
/// where marked exogenous; endogenous launch/remove facts record what the
/// driver's fixed policy did in response to decisions, so the fold can
/// track substrate layouts exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorldFact {
    /// A scripted arrival's time came due (whatever then happened to it).
    ArrivalDue {
        /// Stable identity of the scripted workload (script index).
        workload: u64,
        /// The service.
        service: Service,
        /// SLO class it is submitted under.
        class: SloClass,
        /// Thread count.
        threads: usize,
        /// Offered load at arrival, requests/s.
        offered_rps: f64,
    },
    /// A scripted lifetime ended (whether the workload was live, waiting
    /// or already gone).
    DepartureDue {
        /// Stable identity of the scripted workload (script index).
        workload: u64,
    },
    /// The driver launched a process with its bootstrap allocation.
    Launched {
        /// Stable identity of the scripted workload (script index) this
        /// process realizes. Binds the envelope's app id to its workload so
        /// later per-app facts (load changes) can be attributed when
        /// reconstructing the world script from the log.
        workload: u64,
        /// The service.
        service: Service,
        /// SLO class.
        class: SloClass,
        /// Thread count.
        threads: usize,
        /// Offered load at launch, requests/s.
        offered_rps: f64,
        /// The bootstrap allocation installed at launch.
        bootstrap: Allocation,
        /// Scripted arrival or admission retry.
        cause: LaunchCause,
    },
    /// The driver removed a process from the substrate.
    Removed {
        /// Why it was removed.
        cause: RemovalCause,
    },
    /// The driver changed a live service's offered load.
    LoadChanged {
        /// New offered load, requests/s.
        offered_rps: f64,
    },
    /// One monitoring interval elapsed (the scheduler's tick heartbeat).
    TickElapsed,
    /// The platform injected a fault (drained from the chaos substrate's
    /// record stream — the fault schedule is part of the world).
    FaultInjected {
        /// Monotone faultable-call index that drew this fault.
        call: u64,
        /// What was injected.
        fault: InjectedFault,
    },
    /// The controller process died and was warm-restarted.
    ControllerCrashed,
    /// A cluster node died (crash, outage window or churn); events with
    /// `app` ids record what became of its residents.
    NodeFailed {
        /// The dead node's index.
        node: usize,
    },
    /// A previously failed cluster node rejoined the fleet, empty.
    NodeRecovered {
        /// The rejoining node's index.
        node: usize,
    },
    /// The control channel dropped a message on a node's link (stochastic
    /// loss; partition-window drops are covered by the window facts).
    MessageDropped {
        /// Node whose link lost the message.
        node: usize,
        /// Per-node sequence number of the lost message.
        seq: u64,
    },
    /// The control channel queued an extra copy of a message.
    MessageDuplicated {
        /// Node whose link duplicated the message.
        node: usize,
        /// Per-node sequence number of the duplicated message.
        seq: u64,
    },
    /// A scripted partition window opened: the node is cut off from the
    /// cluster in both directions (the node itself keeps running).
    PartitionStarted {
        /// The isolated node.
        node: usize,
    },
    /// A partition window closed; traffic to and from the node flows again.
    PartitionHealed {
        /// The reconnected node.
        node: usize,
    },
    /// The cluster stopped hearing heartbeats from a node past the
    /// timeout and now *suspects* it dead. Suspicion is belief, not
    /// ground truth — the node may merely be partitioned.
    NodeSuspected {
        /// The suspected node.
        node: usize,
    },
    /// A suspected node answered a heartbeat again; suspicion is lifted
    /// and its resident replicas are reconciled by epoch.
    NodeSuspicionCleared {
        /// The cleared node.
        node: usize,
    },
}

/// Layer 2: a decision the controller made. Every state-mutating site in
/// the scheduler emits exactly one of these (pinned by the emission-site
/// audit test), which is what makes the [`replay`] fold sufficient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// An allocation changed on the substrate.
    Alloc {
        /// What kind of move (place/grant/deprive/reclaim/share/rollback/
        /// restore/repack/repair/bandwidth).
        kind: ActionKind,
        /// Which model (or controller machinery) drove it.
        provenance: Provenance,
        /// Allocation before the move.
        pre: Option<Allocation>,
        /// Allocation after the move (the fold's authoritative layout).
        post: Allocation,
        /// Whether the move counts toward the paper's action accounting.
        counts_as_action: bool,
    },
    /// Model-A profiled a new arrival.
    Profiled {
        /// Predicted OAA cores.
        oaa_cores: usize,
        /// Predicted OAA ways.
        oaa_ways: usize,
        /// Predicted RCliff cores.
        rcliff_cores: usize,
        /// Predicted RCliff ways.
        rcliff_ways: usize,
    },
    /// An arrival (or waiter) was rejected with a typed reason.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// An arrival was deferred into the admission queue.
    Deferred {
        /// The complete queue entry (the fold reconstructs the queue from
        /// these verbatim).
        entry: QueuedEntry,
    },
    /// A queued waiter was admitted on retry.
    Admitted {
        /// The ticket whose seat is released.
        ticket: u64,
        /// Ticks it waited.
        waited_ticks: u64,
    },
    /// A queued waiter expired at the max-wait horizon.
    TimedOut {
        /// The expired ticket.
        ticket: u64,
        /// Ticks it waited.
        waited_ticks: u64,
    },
    /// A full queue evicted its least-protected entry for a better one.
    Evicted {
        /// The evicted ticket.
        ticket: u64,
    },
    /// A waiting ticket was withdrawn by the driver.
    Cancelled {
        /// The cancelled ticket.
        ticket: u64,
    },
    /// A best-effort service was shed during brownout.
    Shed {
        /// The complete shed-stack entry.
        entry: ShedEntry,
    },
    /// A shed service was re-admitted.
    ShedReadmitted {
        /// The ticket leaving the shed stack.
        ticket: u64,
    },
    /// A brownout shave landed on the event's service.
    Shaved {
        /// Model-B′-priced slowdown of this shave.
        price: f64,
        /// Allocation before the *first* shave (the restoration target).
        original: Allocation,
    },
    /// The event's service left the shave ledger (restored, regrown, or
    /// its record disappeared).
    ShaveSettled,
    /// The controller entered its declared degraded state.
    BrownoutEntered {
        /// Queue depth at entry.
        queued: usize,
    },
    /// The controller left brownout.
    BrownoutExited {
        /// Ticks spent degraded.
        ticks_degraded: u64,
    },
    /// The QoS watchdog quarantined the ML path for the event's service.
    FallbackEngaged {
        /// Consecutive failed/ineffective ML actions.
        failures: u32,
    },
    /// The event's service left fallback quarantine.
    FallbackRecovered {
        /// Healthy ticks observed before re-engaging the models.
        healthy_ticks: u32,
    },
    /// The upper scheduler was asked to migrate the event's service.
    MigrationRequested,
    /// A transaction aborted and restored the listed number of services
    /// (each restore also emitted its own [`Decision::Alloc`]).
    TransactionAborted {
        /// Services restored.
        services: usize,
    },
    /// The controller warm/cold-restarted and reconciled durable state
    /// against the live substrate (the fold applies the same queue/shed/
    /// shave sanitization recovery does).
    Restarted {
        /// Whether the snapshot verified.
        warm: bool,
        /// Services restored from snapshot records.
        restored: usize,
        /// Orphans adopted.
        adopted: usize,
        /// Snapshot records whose service departed during the outage.
        dropped: usize,
    },
}

/// Layer 3: an operational-telemetry observation. Never consulted by
/// [`replay`]; stripping every [`TelemetryNote`] from a log leaves the
/// replayed state bit-identical (pinned by tests). Metrics, spans and the
/// structured decision trace continue to flow through `osml-telemetry`
/// sinks; this layer records the scheduler-observed operational events in
/// the unified stream so one file tells the whole story.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryNote {
    /// The scheduler observed a platform fault (failed actuation, invalid
    /// or dropped counter window).
    FaultObserved {
        /// Whether it was transient.
        transient: bool,
    },
    /// A transient actuation failure was retried until success.
    Retried {
        /// Attempts including the final successful one.
        attempts: u32,
        /// Total backoff charged, milliseconds.
        backoff_ms: f64,
    },
    /// A control-plane command needed same-sequence resends before its
    /// acknowledgement arrived (at-least-once delivery over a lossy
    /// channel; distinct from [`TelemetryNote::Retried`], which is an
    /// actuation-level retry on one node).
    MessageRetried {
        /// Send attempts including the final acknowledged one.
        attempts: u32,
        /// Total backoff charged, milliseconds.
        backoff_ms: f64,
    },
}

/// The layer-tagged payload of one unified event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventBody {
    /// Layer 1: world fact.
    World(WorldFact),
    /// Layer 2: system decision.
    Decision(Decision),
    /// Layer 3: operational telemetry (excluded from replay).
    Telemetry(TelemetryNote),
}

/// One entry in the unified log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedEvent {
    /// Monotone sequence number across all layers (the journal's append
    /// order; recovery appends the durable suffix by `seq`).
    pub seq: u64,
    /// Scheduler tick the event was emitted at.
    pub tick: u64,
    /// Simulated time, seconds.
    pub time_s: f64,
    /// The service concerned (raw id), `None` for machine-wide events.
    pub app: Option<u64>,
    /// The layer-tagged payload.
    pub body: EventBody,
}

/// The JSONL header line.
#[derive(Serialize, Deserialize)]
struct LogHeader {
    unified_log_version: u32,
}

/// Errors reading a serialized unified log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifiedLogError {
    /// The stream was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl fmt::Display for UnifiedLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifiedLogError::VersionMismatch { found, expected } => {
                write!(f, "unified log version {found} incompatible with expected {expected}")
            }
        }
    }
}

impl std::error::Error for UnifiedLogError {}

/// What a tolerant read dropped from a damaged tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailLoss {
    /// Bytes past the last complete, parseable event line.
    pub bytes_dropped: usize,
    /// Damaged (unparseable or out-of-order) lines dropped.
    pub lines_dropped: usize,
}

/// The append-only unified event log. Push-only in normal operation; when
/// a journal file is attached, every event is serialized, appended and
/// flushed before `push` returns, so at most the final line of the durable
/// file can be torn by a crash.
#[derive(Debug, Default)]
pub struct UnifiedLog {
    events: Vec<UnifiedEvent>,
    next_seq: u64,
    last_time_s: f64,
    /// Durable mirror; deliberately not cloned (a cloned controller must
    /// not double-append to the same file) and not serialized.
    journal: Option<Arc<Mutex<File>>>,
}

impl Clone for UnifiedLog {
    fn clone(&self) -> Self {
        UnifiedLog {
            events: self.events.clone(),
            next_seq: self.next_seq,
            last_time_s: self.last_time_s,
            journal: None,
        }
    }
}

impl PartialEq for UnifiedLog {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Serialize for UnifiedLog {
    fn to_value(&self) -> serde::Value {
        self.events.to_value()
    }
}

impl Deserialize for UnifiedLog {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<UnifiedEvent>::from_value(v).map(UnifiedLog::from_events)
    }
}

impl UnifiedLog {
    /// An empty log.
    pub fn new() -> Self {
        UnifiedLog::default()
    }

    /// Rebuilds a log from raw events (seq/time bookkeeping re-derived).
    pub fn from_events(events: Vec<UnifiedEvent>) -> Self {
        let next_seq = events.last().map(|e| e.seq + 1).unwrap_or(0);
        let last_time_s = events.last().map(|e| e.time_s).unwrap_or(0.0);
        UnifiedLog { events, next_seq, last_time_s, journal: None }
    }

    /// Appends one event, stamping the next sequence number. Mirrored to
    /// the attached journal (serialized, appended, flushed) before return.
    pub fn push(&mut self, tick: u64, time_s: f64, app: Option<u64>, body: EventBody) {
        let event = UnifiedEvent { seq: self.next_seq, tick, time_s, app, body };
        self.next_seq += 1;
        self.last_time_s = time_s;
        self.mirror(&event);
        self.events.push(event);
    }

    /// Appends one event at the last seen timestamp (for emission sites
    /// with no clock in scope, e.g. ticket cancellation).
    pub fn push_untimed(&mut self, tick: u64, app: Option<u64>, body: EventBody) {
        let time_s = self.last_time_s;
        self.push(tick, time_s, app, body);
    }

    /// Re-appends an event recovered from the durable journal suffix
    /// verbatim, **without** mirroring (it is already on disk).
    pub fn push_restored(&mut self, event: UnifiedEvent) {
        self.next_seq = self.next_seq.max(event.seq + 1);
        self.last_time_s = event.time_s;
        self.events.push(event);
    }

    fn mirror(&self, event: &UnifiedEvent) {
        if let Some(journal) = &self.journal {
            if let Ok(mut file) = journal.lock() {
                let line = serde_json::to_string(event).expect("unified event serializes");
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            }
        }
    }

    /// Attaches (or replaces) a durable journal at `path`, opened in
    /// append mode; a fresh/empty file gets the version header first.
    /// Only events pushed *after* the attach are mirrored.
    ///
    /// # Errors
    ///
    /// Propagates file-open and header-write failures.
    pub fn attach_journal(&mut self, path: &Path) -> std::io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            let header =
                serde_json::to_string(&LogHeader { unified_log_version: UNIFIED_LOG_VERSION })
                    .expect("header serializes");
            writeln!(file, "{header}")?;
            file.flush()?;
        }
        self.journal = Some(Arc::new(Mutex::new(file)));
        Ok(())
    }

    /// All events in order.
    pub fn events(&self) -> &[UnifiedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sequence number of the most recent event, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.events.last().map(|e| e.seq)
    }

    /// `(world, decision, telemetry)` event counts.
    pub fn layer_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for e in &self.events {
            match e.body {
                EventBody::World(_) => counts.0 += 1,
                EventBody::Decision(_) => counts.1 += 1,
                EventBody::Telemetry(_) => counts.2 += 1,
            }
        }
        counts
    }

    /// The decision-layer events, in order (the A/B diff stream).
    pub fn decisions(&self) -> impl Iterator<Item = &UnifiedEvent> {
        self.events.iter().filter(|e| matches!(e.body, EventBody::Decision(_)))
    }

    /// The world-fact events, in order.
    pub fn world_facts(&self) -> impl Iterator<Item = &UnifiedEvent> {
        self.events.iter().filter(|e| matches!(e.body, EventBody::World(_)))
    }

    /// A copy with the telemetry layer removed — replaying it must produce
    /// the identical state (the exclusion invariant).
    pub fn stripped(&self) -> UnifiedLog {
        UnifiedLog::from_events(
            self.events
                .iter()
                .filter(|e| !matches!(e.body, EventBody::Telemetry(_)))
                .cloned()
                .collect(),
        )
    }

    /// Serializes to the versioned JSONL form: one header line, then one
    /// line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out =
            serde_json::to_string(&LogHeader { unified_log_version: UNIFIED_LOG_VERSION })
                .expect("header serializes");
        out.push('\n');
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("unified event serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL form, tolerating a torn tail: reading stops at the
    /// first damaged (unparseable or sequence-regressing) line and keeps
    /// every complete event before it. An empty or header-torn stream is
    /// an empty log, not an error — a crash-damaged journal always yields
    /// its committed prefix. Only a *parseable header with a foreign
    /// version* is refused.
    ///
    /// # Errors
    ///
    /// [`UnifiedLogError::VersionMismatch`] if the header names a version
    /// this build does not understand.
    pub fn from_jsonl_tolerant(text: &str) -> Result<(UnifiedLog, TailLoss), UnifiedLogError> {
        let mut loss = TailLoss::default();
        let mut lines = text.split_inclusive('\n');
        let Some(header_line) = lines.next() else {
            return Ok((UnifiedLog::new(), loss));
        };
        let header: LogHeader = match serde_json::from_str(header_line.trim_end()) {
            Ok(h) => h,
            Err(_) => {
                // Torn or absent header: nothing committed yet.
                loss.bytes_dropped = text.len();
                loss.lines_dropped = text.lines().count();
                return Ok((UnifiedLog::new(), loss));
            }
        };
        if header.unified_log_version != UNIFIED_LOG_VERSION {
            return Err(UnifiedLogError::VersionMismatch {
                found: header.unified_log_version,
                expected: UNIFIED_LOG_VERSION,
            });
        }
        let mut events: Vec<UnifiedEvent> = Vec::new();
        let mut consumed = header_line.len();
        for line in lines {
            let parsed: Result<UnifiedEvent, _> = serde_json::from_str(line.trim_end());
            match parsed {
                Ok(e) if events.last().map(|p: &UnifiedEvent| e.seq > p.seq).unwrap_or(true) => {
                    consumed += line.len();
                    events.push(e);
                }
                _ => break,
            }
        }
        loss.bytes_dropped = text.len() - consumed;
        loss.lines_dropped = text[consumed..].lines().count();
        Ok((UnifiedLog::from_events(events), loss))
    }

    /// Replays this log; see [`replay`].
    ///
    /// # Errors
    ///
    /// See [`replay`].
    pub fn replay(&self) -> Result<ReplayState, ReplayError> {
        replay(self.events())
    }
}

/// The scheduler state a log reconstructs: what [`replay`] returns and
/// what `OsmlScheduler::live_replay_state` captures from a live run, so
/// the two can be compared bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayState {
    /// Ticks executed.
    pub tick: u64,
    /// Scheduling actions committed (the paper's overhead accounting).
    pub actions: usize,
    /// Live services and their exact allocations, keyed by raw id.
    pub layouts: BTreeMap<u64, Allocation>,
    /// The admission queue, in the scheduler's internal order.
    pub queue: Vec<QueuedEntry>,
    /// The shed stack (LIFO).
    pub shed: Vec<ShedEntry>,
    /// The brownout shave ledger.
    pub shaved: Vec<ShaveRecord>,
    /// Tick brownout was entered at, while degraded.
    pub brownout_since: Option<u64>,
}

// Manual serde: the layouts map travels as an ordered `(id, allocation)`
// pair list (the vendored serde shim only maps string-keyed objects).
impl Serialize for ReplayState {
    fn to_value(&self) -> serde::Value {
        let layouts: Vec<(u64, Allocation)> = self.layouts.iter().map(|(&k, v)| (k, *v)).collect();
        serde::Value::Object(vec![
            ("tick".into(), self.tick.to_value()),
            ("actions".into(), self.actions.to_value()),
            ("layouts".into(), layouts.to_value()),
            ("queue".into(), self.queue.to_value()),
            ("shed".into(), self.shed.to_value()),
            ("shaved".into(), self.shaved.to_value()),
            ("brownout_since".into(), self.brownout_since.to_value()),
        ])
    }
}

impl Deserialize for ReplayState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let layouts: Vec<(u64, Allocation)> =
            Deserialize::from_value(serde::obj_field(v, "layouts")?)?;
        Ok(ReplayState {
            tick: Deserialize::from_value(serde::obj_field(v, "tick")?)?,
            actions: Deserialize::from_value(serde::obj_field(v, "actions")?)?,
            layouts: layouts.into_iter().collect(),
            queue: Deserialize::from_value(serde::obj_field(v, "queue")?)?,
            shed: Deserialize::from_value(serde::obj_field(v, "shed")?)?,
            shaved: Deserialize::from_value(serde::obj_field(v, "shaved")?)?,
            brownout_since: Deserialize::from_value(serde::obj_field(v, "brownout_since")?)?,
        })
    }
}

/// A replay-sufficiency violation: the log alone could not reconstruct
/// state, meaning some mutation site failed to emit its event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A decision referenced a service the world facts never launched.
    UnknownApp {
        /// Sequence number of the offending event.
        seq: u64,
        /// The unknown raw id.
        app: u64,
    },
    /// A per-service event arrived with no service in its envelope.
    MissingApp {
        /// Sequence number of the offending event.
        seq: u64,
    },
    /// A queue/shed transition referenced a ticket that holds no seat.
    MissingTicket {
        /// Sequence number of the offending event.
        seq: u64,
        /// The missing ticket.
        ticket: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownApp { seq, app } => {
                write!(f, "event seq {seq}: decision for app {app} never launched by a world fact")
            }
            ReplayError::MissingApp { seq } => {
                write!(f, "event seq {seq}: per-service event carries no app id")
            }
            ReplayError::MissingTicket { seq, ticket } => {
                write!(f, "event seq {seq}: ticket {ticket} holds no seat")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reconstructs full scheduler state from the world-fact + decision layers
/// alone (the telemetry layer is ignored by construction). Strict: any
/// reference to a service or ticket the log cannot account for is an
/// error, because silence here would mean an emission site rotted.
///
/// # Errors
///
/// [`ReplayError`] naming the offending event when the log is
/// insufficient.
pub fn replay(events: &[UnifiedEvent]) -> Result<ReplayState, ReplayError> {
    let mut state = ReplayState::default();
    for ev in events {
        let app = || ev.app.ok_or(ReplayError::MissingApp { seq: ev.seq });
        match &ev.body {
            EventBody::Telemetry(_) => {}
            EventBody::World(fact) => match fact {
                WorldFact::Launched { bootstrap, .. } => {
                    state.layouts.insert(app()?, *bootstrap);
                }
                WorldFact::Removed { cause: RemovalCause::Fenced } => {
                    // A fenced ghost dies without touching the
                    // authoritative replica's layout.
                }
                WorldFact::Removed { .. } => {
                    let id = app()?;
                    state.layouts.remove(&id);
                    state.shaved.retain(|s| s.app != id);
                }
                WorldFact::TickElapsed => state.tick = ev.tick,
                WorldFact::ArrivalDue { .. }
                | WorldFact::DepartureDue { .. }
                | WorldFact::LoadChanged { .. }
                | WorldFact::FaultInjected { .. }
                | WorldFact::ControllerCrashed
                | WorldFact::NodeFailed { .. }
                | WorldFact::NodeRecovered { .. }
                | WorldFact::MessageDropped { .. }
                | WorldFact::MessageDuplicated { .. }
                | WorldFact::PartitionStarted { .. }
                | WorldFact::PartitionHealed { .. }
                | WorldFact::NodeSuspected { .. }
                | WorldFact::NodeSuspicionCleared { .. } => {}
            },
            EventBody::Decision(decision) => {
                match decision {
                    Decision::Alloc { post, counts_as_action, .. } => {
                        let id = app()?;
                        if !state.layouts.contains_key(&id) {
                            return Err(ReplayError::UnknownApp { seq: ev.seq, app: id });
                        }
                        state.layouts.insert(id, *post);
                        if *counts_as_action {
                            state.actions += 1;
                        }
                    }
                    Decision::Deferred { entry } => state.queue.push(*entry),
                    Decision::Admitted { ticket, .. }
                    | Decision::TimedOut { ticket, .. }
                    | Decision::Evicted { ticket } => {
                        let pos =
                            state.queue.iter().position(|e| e.ticket == *ticket).ok_or(
                                ReplayError::MissingTicket { seq: ev.seq, ticket: *ticket },
                            )?;
                        state.queue.remove(pos);
                    }
                    Decision::Cancelled { ticket } => {
                        state.queue.retain(|e| e.ticket != *ticket);
                        state.shed.retain(|e| e.ticket != *ticket);
                    }
                    Decision::Shed { entry } => {
                        state.shaved.retain(|s| s.app != entry.ticket);
                        state.shed.push(*entry);
                    }
                    Decision::ShedReadmitted { ticket } => {
                        let pos =
                            state.shed.iter().rposition(|e| e.ticket == *ticket).ok_or(
                                ReplayError::MissingTicket { seq: ev.seq, ticket: *ticket },
                            )?;
                        state.shed.remove(pos);
                    }
                    Decision::Shaved { price, original } => {
                        let id = app()?;
                        match state.shaved.iter_mut().find(|s| s.app == id) {
                            Some(s) => s.priced += price,
                            None => state.shaved.push(ShaveRecord {
                                app: id,
                                original: *original,
                                priced: *price,
                            }),
                        }
                    }
                    Decision::ShaveSettled => {
                        let id = app()?;
                        state.shaved.retain(|s| s.app != id);
                    }
                    Decision::BrownoutEntered { .. } => state.brownout_since = Some(ev.tick),
                    Decision::BrownoutExited { .. } => state.brownout_since = None,
                    Decision::Restarted { .. } => {
                        state.tick = ev.tick;
                        let layouts = &state.layouts;
                        state.queue.retain(|e| !layouts.contains_key(&e.ticket));
                        state.shed.retain(|e| !layouts.contains_key(&e.ticket));
                        state.shaved.retain(|s| layouts.contains_key(&s.app));
                    }
                    Decision::Profiled { .. }
                    | Decision::Rejected { .. }
                    | Decision::FallbackEngaged { .. }
                    | Decision::FallbackRecovered { .. }
                    | Decision::MigrationRequested
                    | Decision::TransactionAborted { .. } => {}
                }
            }
        }
    }
    Ok(state)
}

/// The first point where two decision streams disagree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Divergence {
    /// Index into the decision-filtered streams (not the raw logs).
    pub index: usize,
    /// The expected (first log's) decision event at that index, if any.
    pub expected: Option<UnifiedEvent>,
    /// The actual (second log's) decision event at that index, if any.
    pub got: Option<UnifiedEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tick = |e: &Option<UnifiedEvent>| {
            e.as_ref().map(|e| e.tick.to_string()).unwrap_or_else(|| "-".into())
        };
        writeln!(
            f,
            "first divergence at decision index {} (tick {} vs {}):",
            self.index,
            tick(&self.expected),
            tick(&self.got)
        )?;
        writeln!(f, "  expected: {:?}", self.expected)?;
        write!(f, "  got:      {:?}", self.got)
    }
}

/// Diffs the decision layers of two logs element-wise, ignoring sequence
/// numbers and timestamps (layer interleavings legitimately differ across
/// configs); the comparison key is `(tick, app, body)`. Returns the first
/// divergence, or `None` when the streams decide identically.
pub fn first_divergence(a: &UnifiedLog, b: &UnifiedLog) -> Option<Divergence> {
    let da: Vec<&UnifiedEvent> = a.decisions().collect();
    let db: Vec<&UnifiedEvent> = b.decisions().collect();
    for i in 0..da.len().max(db.len()) {
        let ea = da.get(i).copied();
        let eb = db.get(i).copied();
        let same = match (ea, eb) {
            (Some(x), Some(y)) => x.tick == y.tick && x.app == y.app && x.body == y.body,
            (None, None) => true,
            _ => false,
        };
        if !same {
            return Some(Divergence { index: i, expected: ea.cloned(), got: eb.cloned() });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::{CoreSet, MbaThrottle, WayMask};
    use proptest::prelude::*;

    fn alloc(cores: std::ops::Range<usize>, first_way: usize, ways: usize) -> Allocation {
        Allocation::new(
            CoreSet::from_cores(cores),
            WayMask::contiguous(first_way, ways).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    fn sample_log() -> UnifiedLog {
        let mut log = UnifiedLog::new();
        log.push(
            0,
            0.5,
            Some(1),
            EventBody::World(WorldFact::Launched {
                workload: 0,
                service: Service::Login,
                class: SloClass::Degradable,
                threads: 4,
                offered_rps: 100.0,
                bootstrap: alloc(0..2, 0, 2),
                cause: LaunchCause::Scripted,
            }),
        );
        log.push(
            0,
            2.5,
            Some(1),
            EventBody::Decision(Decision::Alloc {
                kind: ActionKind::Place,
                provenance: Provenance::ModelA,
                pre: Some(alloc(0..2, 0, 2)),
                post: alloc(0..4, 0, 6),
                counts_as_action: true,
            }),
        );
        log.push(1, 3.5, None, EventBody::World(WorldFact::TickElapsed));
        log.push(
            1,
            3.5,
            Some(1),
            EventBody::Telemetry(TelemetryNote::Retried { attempts: 2, backoff_ms: 1.0 }),
        );
        log
    }

    #[test]
    fn replay_reconstructs_layouts_and_counters() {
        let log = sample_log();
        let state = log.replay().unwrap();
        assert_eq!(state.tick, 1);
        assert_eq!(state.actions, 1);
        assert_eq!(state.layouts.len(), 1);
        assert_eq!(state.layouts[&1], alloc(0..4, 0, 6));
    }

    #[test]
    fn telemetry_layer_is_excluded_from_replay() {
        let log = sample_log();
        assert!(log.layer_counts().2 > 0);
        assert_eq!(log.replay().unwrap(), log.stripped().replay().unwrap());
    }

    #[test]
    fn jsonl_round_trips() {
        let log = sample_log();
        let (back, loss) = UnifiedLog::from_jsonl_tolerant(&log.to_jsonl()).unwrap();
        assert_eq!(loss, TailLoss::default());
        assert_eq!(back, log);
    }

    #[test]
    fn foreign_version_is_refused() {
        let text = sample_log().to_jsonl().replacen(
            "{\"unified_log_version\":1}",
            "{\"unified_log_version\":9}",
            1,
        );
        assert_eq!(
            UnifiedLog::from_jsonl_tolerant(&text),
            Err(UnifiedLogError::VersionMismatch { found: 9, expected: 1 })
        );
    }

    #[test]
    fn truncation_at_every_byte_boundary_keeps_the_committed_prefix() {
        let log = sample_log();
        let text = log.to_jsonl();
        // Complete-line offsets -> number of events committed by then.
        let mut committed_at: Vec<(usize, usize)> = vec![];
        let mut offset = 0usize;
        for (i, line) in text.split_inclusive('\n').enumerate() {
            offset += line.len();
            committed_at.push((offset, i)); // header is line 0
        }
        for cut in 0..=text.len() {
            let (back, _loss) = UnifiedLog::from_jsonl_tolerant(&text[..cut]).unwrap();
            // A line torn *after* its JSON but before the newline is still a
            // complete, durably-committed event — the reader keeps it.
            let expected =
                committed_at.iter().filter(|&&(end, _)| end - 1 <= cut).map(|&(_, i)| i).max();
            let expected_events = expected.unwrap_or(0); // line i complete => i events
            assert_eq!(
                back.events().len(),
                expected_events,
                "cut at byte {cut}: wrong committed prefix"
            );
            assert_eq!(back.events(), &log.events()[..expected_events]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random multi-event logs, random cut: the tolerant reader never
        /// panics, never errors, and always yields an exact event prefix.
        #[test]
        fn torn_tail_always_yields_a_prefix(n in 1usize..12, cut_frac in 0.0f64..1.0) {
            let mut log = UnifiedLog::new();
            for i in 0..n {
                log.push(
                    i as u64,
                    i as f64,
                    Some(i as u64),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::ScriptedDeparture }),
                );
            }
            let text = log.to_jsonl();
            let cut = ((text.len() as f64) * cut_frac) as usize;
            let (back, loss) = UnifiedLog::from_jsonl_tolerant(&text[..cut.min(text.len())]).unwrap();
            prop_assert_eq!(back.events(), &log.events()[..back.events().len()]);
            prop_assert_eq!(loss.bytes_dropped + cut - loss.bytes_dropped, cut);
        }
    }

    #[test]
    fn cluster_failover_sequence_folds_and_round_trips() {
        use osml_telemetry::{ActionKind, Provenance};
        // The cluster tier logs a committed migration as
        // Removed(source) → Launched(destination) → Alloc(Migrate), so the
        // fold never sees the service resident in two places.
        let launched = |cause| {
            EventBody::World(WorldFact::Launched {
                workload: 1,
                service: Service::Moses,
                class: SloClass::LatencyCritical,
                threads: 4,
                offered_rps: 100.0,
                bootstrap: alloc(0..2, 0, 2),
                cause,
            })
        };
        let mut log = UnifiedLog::new();
        log.push(0, 0.0, Some(1), launched(LaunchCause::Scripted));
        log.push(3, 3.0, None, EventBody::World(WorldFact::NodeFailed { node: 0 }));
        log.push(
            3,
            3.0,
            Some(1),
            EventBody::World(WorldFact::Removed { cause: RemovalCause::NodeFailure }),
        );
        log.push(3, 3.0, Some(1), EventBody::Decision(Decision::MigrationRequested));
        log.push(3, 3.0, Some(1), launched(LaunchCause::Failover));
        log.push(
            3,
            3.0,
            Some(1),
            EventBody::Decision(Decision::Alloc {
                kind: ActionKind::Migrate,
                provenance: Provenance::Controller,
                pre: Some(alloc(0..2, 0, 2)),
                post: alloc(2..4, 2, 2),
                counts_as_action: true,
            }),
        );
        log.push(10, 10.0, None, EventBody::World(WorldFact::NodeRecovered { node: 0 }));
        let state = log.replay().unwrap();
        assert_eq!(state.layouts.len(), 1, "exactly one live replica after the migration");
        assert_eq!(state.layouts[&1], alloc(2..4, 2, 2));
        assert_eq!(state.actions, 1);
        let (back, loss) = UnifiedLog::from_jsonl_tolerant(&log.to_jsonl()).unwrap();
        assert_eq!(loss, TailLoss::default());
        assert_eq!(back, log);
    }

    #[test]
    fn divergence_reports_first_differing_decision() {
        let a = sample_log();
        let mut b = sample_log();
        b.push(2, 4.5, Some(1), EventBody::Decision(Decision::MigrationRequested));
        let d = first_divergence(&a, &b).expect("streams differ");
        assert_eq!(d.index, 1);
        assert!(d.expected.is_none());
        assert_eq!(d.got.unwrap().tick, 2);
        assert!(first_divergence(&a, &a).is_none());
    }

    #[test]
    fn replay_rejects_orphan_decisions() {
        let mut log = UnifiedLog::new();
        log.push(
            0,
            0.0,
            Some(9),
            EventBody::Decision(Decision::Alloc {
                kind: ActionKind::Place,
                provenance: Provenance::ModelA,
                pre: None,
                post: alloc(0..1, 0, 1),
                counts_as_action: true,
            }),
        );
        assert_eq!(log.replay(), Err(ReplayError::UnknownApp { seq: 0, app: 9 }));
    }
}

//! Emission-site audit: every state-mutating site in the scheduler source
//! must sit in a function that emits a golden-thread decision event, so
//! the replay fold stays sufficient as the code grows. The audit parses
//! `src/osml.rs` directly — a new `reallocate` call or overload-ledger
//! mutation added without its decision emission fails here, not in a
//! far-away replay divergence.

use std::path::Path;

/// Strips line comments and string-literal contents so brace counting and
/// pattern matching see only code. Good enough for rustfmt'd source: no
/// raw strings or multi-line literals in the audited file.
fn strip(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next(); // skip the escaped char
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// `(name, body)` for every `fn` in the source, found by brace tracking.
fn functions(source: &str) -> Vec<(String, String)> {
    let mut fns: Vec<(String, String)> = Vec::new();
    // Stack of (name, depth the body opened at, body accumulator).
    let mut stack: Vec<(String, i64, String)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth: i64 = 0;
    for raw in source.lines() {
        let line = strip(raw);
        if let Some(pos) = line.find("fn ") {
            let ok_prefix = pos == 0
                || line[..pos].ends_with(' ')
                || line[..pos].ends_with("pub ")
                || line[..pos].ends_with("const ");
            if ok_prefix {
                let rest = &line[pos + 3..];
                if let Some(paren) = rest.find(['(', '<']) {
                    let name = rest[..paren].trim().to_string();
                    if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        pending = Some(name);
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, depth, String::new()));
                    }
                }
                '}' => {
                    if let Some(&(_, open_depth, _)) = stack.last() {
                        if depth == open_depth {
                            let (name, _, body) = stack.pop().expect("non-empty");
                            // Nested fns contribute to the outer body too.
                            if let Some(outer) = stack.last_mut() {
                                outer.2.push_str(&body);
                            }
                            fns.push((name, body));
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        for (_, _, body) in stack.iter_mut() {
            body.push_str(&line);
            body.push('\n');
        }
    }
    fns
}

fn scheduler_source() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/osml.rs");
    std::fs::read_to_string(&path).expect("read scheduler source")
}

/// Every `reallocate` call funnels through a function that emits the
/// matching `Decision::Alloc` (directly or, for repacks, via the caller's
/// `note_repack`). Anything else is an untraced substrate mutation.
#[test]
fn every_reallocate_site_is_a_decision_emitter() {
    let allowed = ["apply", "transact", "repartition_bandwidth", "repair_layout"];
    let source = scheduler_source();
    let mut audited = 0usize;
    for (name, body) in functions(&source) {
        if !body.contains(".reallocate(") {
            continue;
        }
        audited += 1;
        assert!(
            allowed.contains(&name.as_str()),
            "fn `{name}` calls reallocate but is not an audited Alloc-decision emitter; \
             add the Decision::Alloc emission and extend the allowlist"
        );
        assert!(
            body.contains("Decision::Alloc"),
            "fn `{name}` is allowlisted but no longer emits Decision::Alloc"
        );
    }
    assert!(audited >= 3, "audit under-matched: only {audited} reallocate-calling fns found");
}

/// Every function that mutates replay-visible scheduler state (the action
/// counter, the admission queue, the shed stack, the shave ledger) must
/// emit a decision event in the same function — except the documented
/// exemptions whose mutations are reconstructed from world facts instead.
#[test]
fn every_state_mutation_site_emits_a_decision() {
    // `on_departure`: the driver records the `WorldFact::Removed` that the
    // fold uses to apply the same shave-ledger cleanup.
    let exempt = ["on_departure"];
    let mutation_patterns = [
        "self.actions +=",
        ".queue.push(",
        ".queue.remove(",
        ".queue.retain(",
        ".shed.push(",
        ".shed.remove(",
        ".shed.retain(",
        ".shaved.push(",
        ".shaved.pop(",
        ".shaved.retain(",
    ];
    let source = scheduler_source();
    let mut audited = 0usize;
    for (name, body) in functions(&source) {
        let mutates = mutation_patterns.iter().any(|p| body.contains(p));
        if !mutates || exempt.contains(&name.as_str()) {
            continue;
        }
        audited += 1;
        let emits = body.contains("decide(")
            || body.contains("decide_untimed(")
            || body.contains("record_world(");
        assert!(
            emits,
            "fn `{name}` mutates replay-visible state but emits no decision event; \
             the replay fold can no longer reconstruct its effect"
        );
    }
    assert!(audited >= 6, "audit under-matched: only {audited} mutating fns found");
}

/// The parser itself: a sanity pin so a refactor that breaks function
/// extraction fails loudly instead of silently auditing nothing.
#[test]
fn audit_parser_finds_the_known_emitters() {
    let source = scheduler_source();
    let names: Vec<String> = functions(&source).into_iter().map(|(n, _)| n).collect();
    for expected in ["apply", "transact", "shave_step", "shed_step", "restore_step", "tick"] {
        assert!(names.iter().any(|n| n == expected), "parser lost fn `{expected}`");
    }
}

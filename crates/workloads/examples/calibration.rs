//! Calibration report: for every modelled service, the measured maximum
//! load vs. Table 1, the RCliff position at 60 % load, and the cliff
//! magnitude (the latency ratio across one deprivation step).
//!
//! Run with `cargo run -p osml-workloads --release --example calibration`.

use osml_platform::Topology;
use osml_workloads::{oaa, ALL_SERVICES};
fn main() {
    let t = Topology::xeon_e5_2697_v4();
    println!(
        "{:<11} {:>12} {:>12} {:>7} {:>14} {:>10}",
        "service", "table1_max", "measured", "ratio", "rcliff(c,w)", "cliff_mag"
    );
    for s in ALL_SERVICES {
        let ml = oaa::max_load(&t, s);
        let nom = s.params().nominal_max_rps();
        let rps = 0.6 * nom;
        let g = oaa::LatencyGrid::sweep(&t, s, s.params().default_threads, rps);
        let cliff = g.rcliff();
        println!(
            "{:<11} {:>12.0} {:>12.0} {:>7.2} {:>14} {:>10.1}",
            s.name(),
            nom,
            ml,
            ml / nom,
            cliff.map(|p| format!("({},{})", p.cores, p.ways)).unwrap_or("-".into()),
            g.cliff_magnitude()
        );
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;

/// The latency-critical microservices modelled in this reproduction.
///
/// The first eleven are the services of Table 1 in the paper; [`TxtIndex`]
/// is the "unseen" text-indexing service that arrives late in the Fig. 14
/// timeline to test OSML on a workload absent from its training corpus.
///
/// [`TxtIndex`]: Service::TxtIndex
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Service {
    ImgDnn,
    Masstree,
    Memcached,
    MongoDb,
    Moses,
    Nginx,
    Specjbb,
    Sphinx,
    Xapian,
    Login,
    Ads,
    TxtIndex,
}

/// All modelled services, in Table 1 order (plus the unseen `TxtIndex` last).
pub const ALL_SERVICES: [Service; 12] = [
    Service::ImgDnn,
    Service::Masstree,
    Service::Memcached,
    Service::MongoDb,
    Service::Moses,
    Service::Nginx,
    Service::Specjbb,
    Service::Sphinx,
    Service::Xapian,
    Service::Login,
    Service::Ads,
    Service::TxtIndex,
];

impl Service {
    /// Calibrated analytic parameters for this service.
    pub fn params(self) -> &'static ServiceParams {
        &CATALOG[self as usize]
    }

    /// Short lowercase name (stable; used in dataset files and reports).
    pub fn name(self) -> &'static str {
        self.params().name
    }

    /// The services of the paper's Table 1 (excludes the unseen `TxtIndex`).
    pub fn table1() -> &'static [Service] {
        &ALL_SERVICES[..11]
    }

    /// Parses a service from its [`Service::name`].
    pub fn from_name(name: &str) -> Option<Service> {
        ALL_SERVICES.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated parameters of one service's analytic performance model.
///
/// See [`crate::perf::evaluate`] for how each parameter enters the model.
/// Values are calibrated so that (a) the service's maximum load on the whole
/// testbed roughly matches the top RPS of Table 1, and (b) the RCliff
/// position and magnitude match the paper's qualitative description (§III-A):
/// Moses/Xapian/Sphinx/Img-dnn show 100×+ cliffs, MongoDB a gentle one,
/// Img-dnn's cliff lies on the core axis only.
///
/// (The type serializes for experiment provenance but is not deserializable:
/// parameters are a compiled-in calibration, not runtime configuration.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceParams {
    /// Stable lowercase identifier.
    pub name: &'static str,
    /// Application domain, as listed in Table 1.
    pub domain: &'static str,
    /// Pure compute time per request at nominal frequency with a fully
    /// resident working set, in microseconds.
    pub cpu_us: f64,
    /// LLC working-set size in MB; cache beyond this buys nothing.
    pub wss_mb: f64,
    /// Shape of the miss-ratio curve: miss fraction =
    /// `(1 - cache/wss)^gamma` for `cache < wss`. Larger gamma means a hot
    /// working set whose misses vanish quickly as cache grows.
    pub miss_curve_gamma: f64,
    /// LLC misses per request when the cache holds none of the working set.
    pub peak_misses_per_req: f64,
    /// Fraction of peak misses that no LLC allocation can absorb (item
    /// stores, on-disk pages, streaming buffers). Keeps DRAM traffic — and
    /// therefore bandwidth contention — alive even under generous CAT masks.
    pub min_miss_fraction: f64,
    /// Memory-level parallelism: how many misses overlap; the effective
    /// per-miss stall is `DRAM_LATENCY_US / mem_parallelism`.
    pub mem_parallelism: f64,
    /// Arrival/service burstiness multiplier on the queueing wait (an M/G/m
    /// coefficient-of-variation term). Services with bursty request costs
    /// (MongoDB's mixed point/scan queries) see their tails inflate long
    /// before saturation, which *softens* their Resource Cliff — Fig. 1-f
    /// shows MongoDB varying a few x around the cliff where Moses varies
    /// 100x+.
    pub burstiness: f64,
    /// Software scalability limit in effective cores: throughput scales as
    /// `knee * (1 - exp(-cores/knee))`, saturating near this value (locks,
    /// serial sections; Amdahl in saturating form).
    pub scaling_knee: f64,
    /// 95th-percentile tail-latency QoS target, ms.
    pub qos_ms: f64,
    /// The offered loads (RPS) listed for this service in Table 1.
    pub table1_rps: &'static [f64],
    /// Thread count the operator launches by default.
    pub default_threads: usize,
    /// Resident memory at rest, GB.
    pub res_memory_gb: f64,
    /// Additional resident memory per thread, GB.
    pub memory_per_thread_gb: f64,
    /// Instructions-per-clock when not stalled on memory.
    pub base_ipc: f64,
}

impl ServiceParams {
    /// The highest Table-1 load, used as the nominal "100 % load" in the
    /// co-location experiments (Figs. 10–12 express loads as percentages of
    /// this).
    pub fn nominal_max_rps(&self) -> f64 {
        self.table1_rps.iter().copied().fold(0.0, f64::max)
    }
}

/// Read latency of one DRAM access, microseconds (~80 ns).
pub(crate) const DRAM_LATENCY_US: f64 = 0.08;

/// Bytes of DRAM traffic per LLC miss: a 64 B line amplified by prefetcher
/// overfetch and the writeback share.
pub(crate) const BYTES_PER_MISS: f64 = 160.0;

static CATALOG: [ServiceParams; 12] = [
    ServiceParams {
        name: "img-dnn",
        domain: "Image recognition",
        cpu_us: 2500.0,
        wss_mb: 4.0,
        miss_curve_gamma: 2.0,
        peak_misses_per_req: 8_000.0,
        min_miss_fraction: 0.03,
        mem_parallelism: 4.0,
        burstiness: 1.0,
        scaling_knee: 30.0,
        qos_ms: 15.0,
        table1_rps: &[2000.0, 3000.0, 4000.0, 5000.0, 6000.0],
        default_threads: 36,
        res_memory_gb: 1.6,
        memory_per_thread_gb: 0.02,
        base_ipc: 1.9,
    },
    ServiceParams {
        name: "masstree",
        domain: "Key-value store",
        cpu_us: 1500.0,
        wss_mb: 28.0,
        miss_curve_gamma: 1.5,
        peak_misses_per_req: 25_000.0,
        min_miss_fraction: 0.1,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 8.0,
        qos_ms: 5.0,
        table1_rps: &[2800.0, 3400.0, 3800.0, 4200.0, 4600.0],
        default_threads: 16,
        res_memory_gb: 6.0,
        memory_per_thread_gb: 0.05,
        base_ipc: 0.9,
    },
    ServiceParams {
        name: "memcached",
        domain: "Key-value store",
        cpu_us: 12.0,
        wss_mb: 16.0,
        miss_curve_gamma: 1.0,
        peak_misses_per_req: 60.0,
        min_miss_fraction: 0.7,
        mem_parallelism: 4.0,
        burstiness: 1.0,
        scaling_knee: 28.0,
        qos_ms: 1.0,
        table1_rps: &[256_000.0, 284_000.0, 512_000.0, 768_000.0, 1_024_000.0, 1_280_000.0],
        default_threads: 36,
        res_memory_gb: 8.0,
        memory_per_thread_gb: 0.01,
        base_ipc: 0.8,
    },
    ServiceParams {
        name: "mongodb",
        domain: "Persistent database",
        cpu_us: 900.0,
        wss_mb: 24.0,
        miss_curve_gamma: 1.0,
        peak_misses_per_req: 30_000.0,
        min_miss_fraction: 0.3,
        mem_parallelism: 3.0,
        burstiness: 8.0,
        scaling_knee: 14.0,
        qos_ms: 8.0,
        table1_rps: &[1000.0, 3000.0, 5000.0, 7000.0, 9000.0],
        default_threads: 24,
        res_memory_gb: 7.0,
        memory_per_thread_gb: 0.08,
        base_ipc: 1.0,
    },
    ServiceParams {
        name: "moses",
        domain: "RT translation",
        cpu_us: 3200.0,
        wss_mb: 30.0,
        miss_curve_gamma: 2.0,
        peak_misses_per_req: 72_500.0,
        min_miss_fraction: 0.03,
        mem_parallelism: 2.0,
        burstiness: 1.0,
        scaling_knee: 12.0,
        qos_ms: 10.0,
        table1_rps: &[2200.0, 2400.0, 2600.0, 2800.0, 3000.0],
        default_threads: 16,
        res_memory_gb: 4.5,
        memory_per_thread_gb: 0.06,
        base_ipc: 1.1,
    },
    ServiceParams {
        name: "nginx",
        domain: "Web server",
        cpu_us: 45.0,
        wss_mb: 6.0,
        miss_curve_gamma: 1.0,
        peak_misses_per_req: 120.0,
        min_miss_fraction: 0.2,
        mem_parallelism: 4.0,
        burstiness: 1.0,
        scaling_knee: 24.0,
        qos_ms: 2.0,
        table1_rps: &[60_000.0, 120_000.0, 180_000.0, 240_000.0, 300_000.0],
        default_threads: 36,
        res_memory_gb: 0.6,
        memory_per_thread_gb: 0.01,
        base_ipc: 1.6,
    },
    ServiceParams {
        name: "specjbb",
        domain: "Java middleware",
        cpu_us: 800.0,
        wss_mb: 36.0,
        miss_curve_gamma: 1.5,
        peak_misses_per_req: 40_000.0,
        min_miss_fraction: 0.1,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 24.0,
        qos_ms: 10.0,
        table1_rps: &[7000.0, 9000.0, 11_000.0, 13_000.0, 15_000.0],
        default_threads: 36,
        res_memory_gb: 12.0,
        memory_per_thread_gb: 0.1,
        base_ipc: 1.2,
    },
    ServiceParams {
        name: "sphinx",
        domain: "Speech recognition",
        cpu_us: 800_000.0,
        wss_mb: 25.0,
        miss_curve_gamma: 2.0,
        peak_misses_per_req: 2_000_000.0,
        min_miss_fraction: 0.05,
        mem_parallelism: 4.0,
        burstiness: 1.0,
        scaling_knee: 20.0,
        qos_ms: 3000.0,
        table1_rps: &[1.0, 4.0, 8.0, 12.0, 16.0],
        default_threads: 36,
        res_memory_gb: 2.5,
        memory_per_thread_gb: 0.05,
        base_ipc: 1.4,
    },
    ServiceParams {
        name: "xapian",
        domain: "Online search",
        cpu_us: 1800.0,
        wss_mb: 18.0,
        miss_curve_gamma: 2.0,
        peak_misses_per_req: 45_000.0,
        min_miss_fraction: 0.04,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 20.0,
        qos_ms: 8.0,
        table1_rps: &[3600.0, 4400.0, 5200.0, 6000.0, 6800.0],
        default_threads: 24,
        res_memory_gb: 2.0,
        memory_per_thread_gb: 0.03,
        base_ipc: 1.3,
    },
    ServiceParams {
        name: "login",
        domain: "Login",
        cpu_us: 2500.0,
        wss_mb: 8.0,
        miss_curve_gamma: 1.0,
        peak_misses_per_req: 10_000.0,
        min_miss_fraction: 0.05,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 4.0,
        qos_ms: 6.0,
        table1_rps: &[300.0, 600.0, 900.0, 1200.0, 1500.0],
        default_threads: 8,
        res_memory_gb: 1.0,
        memory_per_thread_gb: 0.02,
        base_ipc: 1.2,
    },
    ServiceParams {
        name: "ads",
        domain: "Online renting ads",
        cpu_us: 7300.0,
        wss_mb: 10.0,
        miss_curve_gamma: 1.0,
        peak_misses_per_req: 15_000.0,
        min_miss_fraction: 0.05,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 8.0,
        qos_ms: 15.0,
        table1_rps: &[10.0, 100.0, 1000.0],
        default_threads: 8,
        res_memory_gb: 1.8,
        memory_per_thread_gb: 0.03,
        base_ipc: 1.1,
    },
    ServiceParams {
        name: "txt-index",
        domain: "Text indexing (unseen)",
        cpu_us: 3600.0,
        wss_mb: 20.0,
        miss_curve_gamma: 1.5,
        peak_misses_per_req: 35_000.0,
        min_miss_fraction: 0.08,
        mem_parallelism: 3.0,
        burstiness: 1.0,
        scaling_knee: 14.0,
        qos_ms: 12.0,
        table1_rps: &[1000.0, 2000.0, 3000.0],
        default_threads: 16,
        res_memory_gb: 3.0,
        memory_per_thread_gb: 0.04,
        base_ipc: 1.2,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_indexed_by_discriminant() {
        for s in ALL_SERVICES {
            assert_eq!(Service::from_name(s.name()), Some(s));
        }
        assert_eq!(Service::Moses.name(), "moses");
        assert_eq!(Service::TxtIndex.name(), "txt-index");
    }

    #[test]
    fn table1_excludes_unseen_service() {
        assert_eq!(Service::table1().len(), 11);
        assert!(!Service::table1().contains(&Service::TxtIndex));
    }

    #[test]
    fn table1_loads_match_the_paper() {
        assert_eq!(Service::Moses.params().table1_rps, &[2200.0, 2400.0, 2600.0, 2800.0, 3000.0]);
        assert_eq!(Service::Sphinx.params().table1_rps, &[1.0, 4.0, 8.0, 12.0, 16.0]);
        assert_eq!(Service::Memcached.params().nominal_max_rps(), 1_280_000.0);
        assert_eq!(Service::ImgDnn.params().nominal_max_rps(), 6000.0);
    }

    #[test]
    fn parameters_are_physically_sensible() {
        for s in ALL_SERVICES {
            let p = s.params();
            assert!(p.cpu_us > 0.0, "{s}");
            assert!(p.wss_mb > 0.0 && p.wss_mb <= 64.0, "{s}");
            assert!(p.miss_curve_gamma >= 1.0, "{s}");
            assert!(p.mem_parallelism >= 1.0, "{s}");
            assert!(p.scaling_knee > 0.0, "{s}");
            assert!(p.qos_ms > 0.0, "{s}");
            assert!(!p.table1_rps.is_empty(), "{s}");
            assert!(p.default_threads >= 1 && p.default_threads <= 36, "{s}");
        }
    }

    #[test]
    fn img_dnn_working_set_fits_in_two_ways() {
        // The paper observes Img-dnn's RCliff exists only on the core axis;
        // in the model that requires its working set to fit in very few ways
        // (4 MB < 2 ways * 2.25 MB/way).
        assert!(Service::ImgDnn.params().wss_mb <= 4.5);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ALL_SERVICES {
            assert_eq!(Service::from_name(&s.to_string()), Some(s));
        }
        assert_eq!(Service::from_name("no-such-service"), None);
    }
}

//! The closed-form performance model: service time, capacity, queueing tail
//! latency and synthesized hardware counters for one service under a given
//! resource allocation.
//!
//! # Model
//!
//! Per-request service time (µs) at effective frequency `f`:
//!
//! ```text
//! t = [ cpu_us * (f_nom / f)  +  misses_per_req(cache) * stall_per_miss * mem_stall ]
//!     * cs_overhead(threads, logical_cores)
//! ```
//!
//! * `misses_per_req(cache) = peak_misses_per_req * (1 - cache/wss)^gamma`
//!   (clamped at 0 once the working set is resident) — a concave miss-ratio
//!   curve,
//! * `stall_per_miss = DRAM_LATENCY_US / mem_parallelism`,
//! * `mem_stall ≥ 1` is the bandwidth-contention multiplier handed in by the
//!   co-location simulator (1 when DRAM is uncontended),
//! * `cs_overhead = 1 + 0.04 * max(0, threads/cores - 1)` models context
//!   switching when more threads than cores are mapped (§III-B of the paper:
//!   more threads never help, but only mildly hurt).
//!
//! Capacity: `effective cores` come from the core set (HT-aware, see
//! [`osml_platform::CoreSet::effective_cores`]) possibly discounted by the
//! simulator for time-shared cores, then squashed through the service's
//! scalability curve `knee * (1 - exp(-c/knee))` and capped by the thread
//! count. Capacity in RPS is `servers / t`.
//!
//! Tail latency: an M/M/m-flavoured approximation. With utilization
//! `ρ = offered / capacity`:
//!
//! * below [`RHO_SATURATION`] the mean wait uses Sakasegawa's approximation
//!   `Wq = t * ρ^√(2(m+1)) / (m (1-ρ))` and `p95 = t + 3 Wq` (exponential
//!   wait tail),
//! * beyond it the queue is unstable; the backlog that accumulates over a
//!   sustained overload horizon dominates:
//!   `p95 += OVERLOAD_HORIZON_MS * (ρ - RHO_SATURATION) / ρ`.
//!
//! Crossing `ρ = 1` therefore lifts p95 from tens of milliseconds to seconds
//! within one core or one LLC way — the paper's **Resource Cliff**. The
//! magnitudes match Fig. 1 (e.g. Moses jumping 34 ms → 4644 ms when one way
//! is deprived).

use crate::params::{ServiceParams, BYTES_PER_MISS, DRAM_LATENCY_US};
use serde::{Deserialize, Serialize};

/// Utilization beyond which the queue is treated as saturated.
pub const RHO_SATURATION: f64 = 0.99;

/// Backlog horizon for an overloaded service, ms. A queue that has been
/// unstable for ~100 s serves newly arriving requests after roughly
/// `horizon * (ρ-1)/ρ` — this produces the paper's multi-second cliff
/// latencies.
pub const OVERLOAD_HORIZON_MS: f64 = 100_000.0;

/// Hard ceiling on reported p95, ms (requests time out eventually).
pub const MAX_LATENCY_MS: f64 = 120_000.0;

/// Context-switch overhead per excess thread per core.
const CS_OVERHEAD_PER_THREAD: f64 = 0.04;

/// p95 is the mean plus three mean waits for an exponential-ish wait tail.
const P95_WAIT_MULTIPLIER: f64 = 3.0;

/// Scale on the Sakasegawa waiting term. Latency-critical services run open
/// loop with deep parallelism, so measured tails hug the service time until
/// utilization is close to 1 (the "hockey stick"); the raw M/M/m wait rises
/// too early. The scale keeps the QoS frontier adjacent to the saturation
/// frontier — which is precisely what makes the paper's Resource Cliff so
/// abrupt (one way off a 34 ms cell lands at 4644 ms).
const WAIT_SCALE: f64 = 0.25;

/// Inputs to one evaluation of the performance model.
///
/// The co-location simulator fills these from the current allocation and the
/// contention fixed point; standalone analyses (the Fig. 1 grids) fill them
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfInput {
    /// Number of threads the service runs.
    pub threads: usize,
    /// Offered load, requests per second.
    pub offered_rps: f64,
    /// HT-aware effective core count available to this service (possibly
    /// fractional when cores are time-shared with other services).
    pub effective_cores: f64,
    /// Number of logical cores in the service's affinity mask (for the
    /// context-switch term).
    pub logical_cores: usize,
    /// LLC capacity effectively available, MB (after sharing splits).
    pub cache_mb: f64,
    /// Current core frequency, GHz.
    pub frequency_ghz: f64,
    /// Nominal platform frequency, GHz.
    pub nominal_frequency_ghz: f64,
    /// Memory-stall multiplier from bandwidth contention (≥ 1).
    pub mem_stall: f64,
}

impl PerfInput {
    /// A solo, uncontended run: `threads` threads on `effective_cores`
    /// dedicated cores with `cache_mb` of LLC at nominal frequency.
    pub fn solo(threads: usize, offered_rps: f64, effective_cores: f64, cache_mb: f64) -> Self {
        PerfInput {
            threads,
            offered_rps,
            effective_cores,
            logical_cores: effective_cores.ceil() as usize,
            cache_mb,
            frequency_ghz: 2.3,
            nominal_frequency_ghz: 2.3,
            mem_stall: 1.0,
        }
    }
}

/// Outputs of one evaluation: latency statistics plus the raw quantities the
/// simulator turns into Table-3 counter samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfOutcome {
    /// Per-request service time after cache/memory effects, ms.
    pub service_time_ms: f64,
    /// Mean response latency, ms.
    pub mean_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// Utilization `ρ` (may exceed 1 under overload).
    pub utilization: f64,
    /// Throughput actually served, RPS.
    pub achieved_rps: f64,
    /// Capacity at this allocation, RPS.
    pub capacity_rps: f64,
    /// LLC misses per second at the achieved throughput.
    pub misses_per_sec: f64,
    /// DRAM bandwidth demanded at the achieved throughput, GB/s.
    pub bw_demand_gbps: f64,
    /// Average instructions per clock.
    pub ipc: f64,
    /// Aggregate core utilization (1.0 = one core busy).
    pub cpu_usage: f64,
    /// LLC occupancy, MB.
    pub llc_occupancy_mb: f64,
}

/// Miss fraction of the working set given `cache_mb` of LLC.
///
/// Floored at the service's uncacheable fraction: a memcached item store or
/// a database's on-disk pages never fit in the LLC, so some miss traffic
/// survives any CAT allocation.
pub fn miss_fraction(params: &ServiceParams, cache_mb: f64) -> f64 {
    let coverage = (cache_mb / params.wss_mb).clamp(0.0, 1.0);
    (1.0 - coverage).powf(params.miss_curve_gamma).max(params.min_miss_fraction)
}

/// LLC misses per request given `cache_mb` of LLC.
pub fn misses_per_request(params: &ServiceParams, cache_mb: f64) -> f64 {
    params.peak_misses_per_req * miss_fraction(params, cache_mb)
}

/// Saturating scalability curve: effective servers from raw effective cores.
fn scaled_servers(params: &ServiceParams, effective_cores: f64, threads: usize) -> f64 {
    let knee = params.scaling_knee;
    let scaled = knee * (1.0 - (-effective_cores / knee).exp());
    scaled.min(threads as f64).max(1e-6)
}

/// Evaluates the performance model for one service.
///
/// This function is pure and cheap (a few dozen FLOPs), which is what makes
/// sweeping millions of allocation cases for training data tractable.
pub fn evaluate(params: &ServiceParams, input: &PerfInput) -> PerfOutcome {
    let freq_scale = input.nominal_frequency_ghz / input.frequency_ghz.max(0.1);
    let cpu_us = params.cpu_us * freq_scale;

    let mpr = misses_per_request(params, input.cache_mb);
    let stall_per_miss_us = DRAM_LATENCY_US / params.mem_parallelism;
    let mem_us = mpr * stall_per_miss_us * input.mem_stall.max(1.0);

    let cs = if input.logical_cores > 0 && input.threads > input.logical_cores {
        1.0 + CS_OVERHEAD_PER_THREAD * (input.threads as f64 / input.logical_cores as f64 - 1.0)
    } else {
        1.0
    };

    let t_us = (cpu_us + mem_us) * cs;
    let t_ms = t_us / 1000.0;

    let servers = scaled_servers(params, input.effective_cores, input.threads);
    let capacity_rps = servers / t_us * 1e6;
    let rho = if capacity_rps > 0.0 { input.offered_rps / capacity_rps } else { f64::INFINITY };

    // Queueing delay below saturation (Sakasegawa M/M/m approximation).
    let rho_q = rho.min(RHO_SATURATION);
    let exponent = (2.0 * (servers + 1.0)).sqrt();
    let wq_ms =
        params.burstiness * WAIT_SCALE * t_ms * rho_q.powf(exponent) / (servers * (1.0 - rho_q));

    let mut p95 = t_ms + P95_WAIT_MULTIPLIER * wq_ms;
    let mut mean = t_ms + wq_ms;
    if rho > RHO_SATURATION {
        let backlog_ms = OVERLOAD_HORIZON_MS * (rho - RHO_SATURATION) / rho;
        p95 += backlog_ms;
        mean += backlog_ms * 0.8;
    }
    let p95 = p95.min(MAX_LATENCY_MS);
    let mean = mean.min(MAX_LATENCY_MS);

    let achieved_rps = input.offered_rps.min(capacity_rps);
    let misses_per_sec = mpr * achieved_rps;
    let bw_demand_gbps = misses_per_sec * BYTES_PER_MISS / 1e9;

    // Memory stalls depress IPC in proportion to the stalled fraction of
    // the request's service time.
    let ipc = params.base_ipc * cpu_us / (cpu_us + mem_us);
    let cpu_usage = rho.min(1.0) * servers;
    let llc_occupancy_mb = input.cache_mb.min(params.wss_mb);

    PerfOutcome {
        service_time_ms: t_ms,
        mean_ms: mean,
        p95_ms: p95,
        utilization: rho,
        achieved_rps,
        capacity_rps,
        misses_per_sec,
        bw_demand_gbps,
        ipc,
        cpu_usage,
        llc_occupancy_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Service;

    fn eval(service: Service, threads: usize, rps: f64, cores: f64, cache: f64) -> PerfOutcome {
        evaluate(service.params(), &PerfInput::solo(threads, rps, cores, cache))
    }

    #[test]
    fn ample_resources_meet_qos() {
        for s in crate::ALL_SERVICES {
            let p = s.params();
            let rps = 0.5 * p.nominal_max_rps();
            let out = eval(s, p.default_threads, rps, 23.4, 45.0);
            assert!(
                out.p95_ms <= p.qos_ms,
                "{s}: p95 {:.2} ms > QoS {:.2} ms at 50% load with full machine",
                out.p95_ms,
                p.qos_ms
            );
        }
    }

    #[test]
    fn starved_resources_violate_qos() {
        for s in crate::ALL_SERVICES {
            let p = s.params();
            let rps = 0.8 * p.nominal_max_rps();
            let out = eval(s, p.default_threads, rps, 1.0, 2.25);
            assert!(
                out.p95_ms > p.qos_ms,
                "{s}: p95 {:.2} ms unexpectedly meets QoS on 1 core / 1 way",
                out.p95_ms
            );
        }
    }

    #[test]
    fn latency_is_monotone_in_cache() {
        let p = Service::Moses.params();
        let mut last = f64::INFINITY;
        for ways in 1..=20 {
            let out = eval(Service::Moses, 16, 2200.0, 8.0, ways as f64 * 2.25);
            assert!(out.p95_ms <= last + 1e-9, "p95 must not rise with more cache");
            last = out.p95_ms;
        }
        let _ = p;
    }

    #[test]
    fn latency_is_monotone_in_cores() {
        let mut last = f64::INFINITY;
        for cores in 1..=18 {
            let out = eval(Service::Xapian, 24, 4000.0, cores as f64, 45.0);
            assert!(out.p95_ms <= last + 1e-9, "p95 must not rise with more cores");
            last = out.p95_ms;
        }
    }

    #[test]
    fn moses_exhibits_a_cliff_on_the_way_axis() {
        // Find some core count where removing one way takes Moses at RPS
        // 1800 from meeting QoS-ish latency into the multi-second regime.
        let mut found = false;
        for cores in 4..=20 {
            for ways in 2..=20 {
                let good = eval(Service::Moses, 16, 1800.0, cores as f64, ways as f64 * 2.25);
                let bad = eval(Service::Moses, 16, 1800.0, cores as f64, (ways - 1) as f64 * 2.25);
                if good.p95_ms < 50.0 && bad.p95_ms > 1000.0 {
                    found = true;
                }
            }
        }
        assert!(found, "no way-axis cliff found for Moses at RPS 1800");
    }

    #[test]
    fn img_dnn_cliff_is_core_only() {
        // With its 4 MB working set resident in 2 ways, Img-dnn's latency is
        // essentially flat along the way axis...
        let at2 = eval(Service::ImgDnn, 36, 4000.0, 12.0, 2.0 * 2.25);
        let at20 = eval(Service::ImgDnn, 36, 4000.0, 12.0, 20.0 * 2.25);
        assert!(at2.p95_ms / at20.p95_ms < 1.5, "way axis should be flat for img-dnn");

        // ...but a core cliff exists: some k where k-1 cores explodes.
        let mut found = false;
        for cores in 2..=18 {
            let good = eval(Service::ImgDnn, 36, 4000.0, cores as f64, 45.0);
            let bad = eval(Service::ImgDnn, 36, 4000.0, cores as f64 - 1.0, 45.0);
            if good.p95_ms < 100.0 && bad.p95_ms > 1000.0 {
                found = true;
            }
        }
        assert!(found, "no core-axis cliff found for img-dnn");
    }

    #[test]
    fn cliff_magnitude_matches_fig1_scale() {
        // The paper quotes Moses jumping from ~34 ms to ~4644 ms when a way
        // is deprived. Verify our overload model produces multi-second
        // latencies just past the frontier.
        let out = eval(Service::Moses, 16, 2200.0, 6.0, 9.0 * 2.25);
        if out.utilization > 1.0 {
            assert!(out.p95_ms > 1000.0, "overloaded cell must be in the seconds regime");
        }
    }

    #[test]
    fn overload_latency_grows_with_overload_depth() {
        let mild = eval(Service::Xapian, 24, 5000.0, 4.0, 45.0);
        let severe = eval(Service::Xapian, 24, 5000.0, 2.0, 45.0);
        assert!(severe.utilization > mild.utilization);
        assert!(severe.p95_ms >= mild.p95_ms);
    }

    #[test]
    fn more_threads_than_cores_raise_latency_mildly() {
        let p = Service::Moses.params();
        let base = evaluate(
            p,
            &PerfInput {
                threads: 10,
                logical_cores: 10,
                ..PerfInput::solo(10, 1200.0, 10.0, 45.0)
            },
        );
        let over = evaluate(
            p,
            &PerfInput {
                threads: 32,
                logical_cores: 10,
                ..PerfInput::solo(32, 1200.0, 10.0, 45.0)
            },
        );
        assert!(over.p95_ms > base.p95_ms, "oversubscription must cost something");
        assert!(over.p95_ms < base.p95_ms * 3.0, "but not move the cliff dramatically");
    }

    #[test]
    fn fewer_threads_than_cores_limit_capacity() {
        let p = Service::ImgDnn.params();
        let narrow = evaluate(p, &PerfInput::solo(2, 1000.0, 16.0, 45.0));
        let wide = evaluate(p, &PerfInput::solo(16, 1000.0, 16.0, 45.0));
        assert!(narrow.capacity_rps < wide.capacity_rps);
    }

    #[test]
    fn bandwidth_demand_scales_with_misses() {
        let starved = eval(Service::Moses, 16, 2000.0, 12.0, 4.5);
        let rich = eval(Service::Moses, 16, 2000.0, 12.0, 45.0);
        assert!(starved.bw_demand_gbps > rich.bw_demand_gbps);
        assert!(rich.bw_demand_gbps >= 0.0);
    }

    #[test]
    fn mem_stall_raises_latency_and_can_tip_overload() {
        let p = Service::Moses.params();
        let base = PerfInput::solo(16, 2200.0, 7.0, 22.5);
        let calm = evaluate(p, &base);
        let stalled = evaluate(p, &PerfInput { mem_stall: 3.0, ..base });
        assert!(stalled.p95_ms > calm.p95_ms);
        assert!(stalled.service_time_ms > calm.service_time_ms);
    }

    #[test]
    fn ipc_falls_as_cache_shrinks() {
        let rich = eval(Service::Xapian, 24, 3000.0, 10.0, 45.0);
        let poor = eval(Service::Xapian, 24, 3000.0, 10.0, 2.25);
        assert!(poor.ipc < rich.ipc);
    }

    #[test]
    fn latency_is_capped() {
        let out = eval(Service::Sphinx, 36, 16.0, 1.0, 2.25);
        assert!(out.p95_ms <= MAX_LATENCY_MS);
    }

    #[test]
    fn frequency_scaling_slows_service() {
        let p = Service::Nginx.params();
        let base = PerfInput::solo(36, 100_000.0, 18.0, 45.0);
        let slow = PerfInput { frequency_ghz: 1.15, ..base };
        assert!(evaluate(p, &slow).service_time_ms > evaluate(p, &base).service_time_ms);
    }

    #[test]
    fn miss_fraction_boundaries() {
        let p = Service::Moses.params();
        assert!((miss_fraction(p, 0.0) - 1.0).abs() < 1e-12);
        // Fully resident working sets still miss at the uncacheable floor.
        assert!((miss_fraction(p, p.wss_mb) - p.min_miss_fraction).abs() < 1e-12);
        assert!((miss_fraction(p, p.wss_mb * 2.0) - p.min_miss_fraction).abs() < 1e-12);
        let half = miss_fraction(p, p.wss_mb / 2.0);
        assert!(half > 0.0 && half < 1.0);
    }
}

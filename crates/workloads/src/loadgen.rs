//! Deterministic load schedules for the dynamic experiments.
//!
//! The paper's Fig. 4 and Fig. 14 drive co-located services with loads that
//! arrive, step and ramp over time. [`LoadSchedule`] expresses one service's
//! offered load as a function of time; [`ArrivalScript`] sequences service
//! arrivals/departures for a whole experiment.

use crate::Service;
use serde::{Deserialize, Serialize};

/// One service's offered load over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSchedule {
    /// Constant load.
    Constant {
        /// Offered load, RPS.
        rps: f64,
    },
    /// Piecewise-constant steps: `(start_time_s, rps)`, sorted by time.
    /// Before the first step the load is 0.
    Steps {
        /// Step points: from `at_s` onward the load is `rps`.
        steps: Vec<(f64, f64)>,
    },
    /// Linear ramp from `from_rps` at `start_s` to `to_rps` at `end_s`,
    /// constant outside the ramp window.
    Ramp {
        /// Ramp start time, s.
        start_s: f64,
        /// Ramp end time, s.
        end_s: f64,
        /// Load before and at `start_s`, RPS.
        from_rps: f64,
        /// Load at and after `end_s`, RPS.
        to_rps: f64,
    },
    /// A diurnal-style sinusoid: `base + amplitude * sin(2π t / period)`,
    /// clamped at 0.
    Diurnal {
        /// Mean load, RPS.
        base_rps: f64,
        /// Swing amplitude, RPS.
        amplitude_rps: f64,
        /// Period, s.
        period_s: f64,
    },
}

impl LoadSchedule {
    /// Offered load at time `t` seconds.
    pub fn rps_at(&self, t: f64) -> f64 {
        match self {
            LoadSchedule::Constant { rps } => *rps,
            LoadSchedule::Steps { steps } => steps
                .iter()
                .take_while(|(at, _)| *at <= t)
                .last()
                .map(|&(_, rps)| rps)
                .unwrap_or(0.0),
            LoadSchedule::Ramp { start_s, end_s, from_rps, to_rps } => {
                if t <= *start_s {
                    *from_rps
                } else if t >= *end_s {
                    *to_rps
                } else {
                    let f = (t - start_s) / (end_s - start_s);
                    from_rps + f * (to_rps - from_rps)
                }
            }
            LoadSchedule::Diurnal { base_rps, amplitude_rps, period_s } => (base_rps
                + amplitude_rps * (2.0 * std::f64::consts::PI * t / period_s).sin())
            .max(0.0),
        }
    }
}

/// One service's lifecycle inside an experiment: when it arrives, how its
/// load evolves, how many threads it runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// The service that arrives.
    pub service: Service,
    /// Arrival time, s.
    pub arrive_s: f64,
    /// Departure time, s (`f64::INFINITY` to stay forever).
    pub depart_s: f64,
    /// Worker threads.
    pub threads: usize,
    /// Load over time, with `t = 0` at *experiment* start (not arrival).
    pub load: LoadSchedule,
}

/// A whole experiment's arrival script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalScript {
    /// Events, sorted by arrival time.
    pub events: Vec<ArrivalEvent>,
    /// Experiment duration, s.
    pub duration_s: f64,
}

impl ArrivalScript {
    /// Creates a script, sorting events by arrival time.
    pub fn new(mut events: Vec<ArrivalEvent>, duration_s: f64) -> Self {
        events.sort_by(|a, b| a.arrive_s.total_cmp(&b.arrive_s));
        ArrivalScript { events, duration_s }
    }

    /// The Fig. 14 dynamic-load scenario: Moses arrives first; Img-dnn and
    /// Xapian follow; MongoDB arrives at t = 80 s; Login at t = 160 s; the
    /// unseen Txt-index at t = 190 s; Xapian's load steps up at t = 224 s.
    ///
    /// Loads are scaled so the peak aggregate (~115 % of one service's max)
    /// sits just inside the simulated testbed's co-location frontier, as the
    /// paper's loads did on theirs — the point of the scenario is the
    /// scheduling dynamics, not permanent overload.
    pub fn fig14() -> Self {
        let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
        ArrivalScript::new(
            vec![
                ArrivalEvent {
                    service: Service::Moses,
                    arrive_s: 0.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Moses.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::Moses, 30.0) },
                },
                ArrivalEvent {
                    service: Service::ImgDnn,
                    arrive_s: 10.0,
                    depart_s: f64::INFINITY,
                    threads: Service::ImgDnn.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::ImgDnn, 20.0) },
                },
                ArrivalEvent {
                    service: Service::Xapian,
                    arrive_s: 10.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Xapian.params().default_threads,
                    load: LoadSchedule::Steps {
                        steps: vec![
                            (10.0, pct(Service::Xapian, 15.0)),
                            (224.0, pct(Service::Xapian, 25.0)),
                        ],
                    },
                },
                ArrivalEvent {
                    service: Service::MongoDb,
                    arrive_s: 80.0,
                    depart_s: f64::INFINITY,
                    threads: Service::MongoDb.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::MongoDb, 10.0) },
                },
                ArrivalEvent {
                    service: Service::Login,
                    arrive_s: 160.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Login.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::Login, 10.0) },
                },
                ArrivalEvent {
                    service: Service::TxtIndex,
                    arrive_s: 190.0,
                    depart_s: f64::INFINITY,
                    threads: Service::TxtIndex.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::TxtIndex, 10.0) },
                },
            ],
            300.0,
        )
    }

    /// The Fig. 4 heuristic-scheduling scenario: Img-dnn, Xapian and Moses
    /// co-arrive at moderate loads and must be untangled by the scheduler.
    pub fn fig4() -> Self {
        let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
        let ev = |service: Service, p: f64| ArrivalEvent {
            service,
            arrive_s: 0.0,
            depart_s: f64::INFINITY,
            threads: service.params().default_threads,
            load: LoadSchedule::Constant { rps: pct(service, p) },
        };
        ArrivalScript::new(
            vec![ev(Service::ImgDnn, 40.0), ev(Service::Xapian, 40.0), ev(Service::Moses, 40.0)],
            120.0,
        )
    }

    /// Events active at time `t`.
    pub fn active_at(&self, t: f64) -> impl Iterator<Item = &ArrivalEvent> {
        self.events.iter().filter(move |e| e.arrive_s <= t && t < e.depart_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let l = LoadSchedule::Constant { rps: 42.0 };
        assert_eq!(l.rps_at(0.0), 42.0);
        assert_eq!(l.rps_at(1e6), 42.0);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let l = LoadSchedule::Steps { steps: vec![(10.0, 100.0), (20.0, 300.0)] };
        assert_eq!(l.rps_at(0.0), 0.0);
        assert_eq!(l.rps_at(10.0), 100.0);
        assert_eq!(l.rps_at(19.9), 100.0);
        assert_eq!(l.rps_at(20.0), 300.0);
        assert_eq!(l.rps_at(1e9), 300.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let l = LoadSchedule::Ramp { start_s: 0.0, end_s: 10.0, from_rps: 0.0, to_rps: 100.0 };
        assert_eq!(l.rps_at(-5.0), 0.0);
        assert!((l.rps_at(5.0) - 50.0).abs() < 1e-9);
        assert_eq!(l.rps_at(15.0), 100.0);
    }

    #[test]
    fn diurnal_never_goes_negative() {
        let l = LoadSchedule::Diurnal { base_rps: 10.0, amplitude_rps: 50.0, period_s: 100.0 };
        for i in 0..200 {
            assert!(l.rps_at(i as f64) >= 0.0);
        }
    }

    #[test]
    fn fig14_script_matches_the_paper_timeline() {
        let s = ArrivalScript::fig14();
        assert_eq!(s.active_at(0.0).count(), 1, "only Moses at t=0");
        assert_eq!(s.active_at(15.0).count(), 3, "Img-dnn and Xapian joined");
        assert_eq!(s.active_at(100.0).count(), 4, "MongoDB joined at t=80");
        assert_eq!(s.active_at(200.0).count(), 6, "Login and Txt-index joined");
        // Xapian's load steps at t=224.
        let xapian = s.events.iter().find(|e| e.service == Service::Xapian).unwrap();
        assert!(xapian.load.rps_at(230.0) > xapian.load.rps_at(200.0));
    }

    #[test]
    fn script_sorts_events() {
        let e = |at: f64| ArrivalEvent {
            service: Service::Login,
            arrive_s: at,
            depart_s: f64::INFINITY,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        let s = ArrivalScript::new(vec![e(5.0), e(1.0), e(3.0)], 10.0);
        let times: Vec<f64> = s.events.iter().map(|e| e.arrive_s).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn departures_end_activity() {
        let e = ArrivalEvent {
            service: Service::Ads,
            arrive_s: 0.0,
            depart_s: 10.0,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        let s = ArrivalScript::new(vec![e], 20.0);
        assert_eq!(s.active_at(5.0).count(), 1);
        assert_eq!(s.active_at(10.0).count(), 0);
    }
}

//! Deterministic load schedules for the dynamic experiments.
//!
//! The paper's Fig. 4 and Fig. 14 drive co-located services with loads that
//! arrive, step and ramp over time. [`LoadSchedule`] expresses one service's
//! offered load as a function of time; [`ArrivalScript`] sequences service
//! arrivals/departures for a whole experiment.

use crate::Service;
use serde::{Deserialize, Serialize};

/// One service's offered load over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSchedule {
    /// Constant load.
    Constant {
        /// Offered load, RPS.
        rps: f64,
    },
    /// Piecewise-constant steps: `(start_time_s, rps)`, sorted by time.
    /// Before the first step the load is 0.
    Steps {
        /// Step points: from `at_s` onward the load is `rps`.
        steps: Vec<(f64, f64)>,
    },
    /// Linear ramp from `from_rps` at `start_s` to `to_rps` at `end_s`,
    /// constant outside the ramp window.
    Ramp {
        /// Ramp start time, s.
        start_s: f64,
        /// Ramp end time, s.
        end_s: f64,
        /// Load before and at `start_s`, RPS.
        from_rps: f64,
        /// Load at and after `end_s`, RPS.
        to_rps: f64,
    },
    /// A diurnal-style sinusoid: `base + amplitude * sin(2π t / period)`,
    /// clamped at 0.
    Diurnal {
        /// Mean load, RPS.
        base_rps: f64,
        /// Swing amplitude, RPS.
        amplitude_rps: f64,
        /// Period, s.
        period_s: f64,
    },
}

impl LoadSchedule {
    /// Offered load at time `t` seconds.
    pub fn rps_at(&self, t: f64) -> f64 {
        match self {
            LoadSchedule::Constant { rps } => *rps,
            LoadSchedule::Steps { steps } => steps
                .iter()
                .take_while(|(at, _)| *at <= t)
                .last()
                .map(|&(_, rps)| rps)
                .unwrap_or(0.0),
            LoadSchedule::Ramp { start_s, end_s, from_rps, to_rps } => {
                if t <= *start_s {
                    *from_rps
                } else if t >= *end_s {
                    *to_rps
                } else {
                    let f = (t - start_s) / (end_s - start_s);
                    from_rps + f * (to_rps - from_rps)
                }
            }
            LoadSchedule::Diurnal { base_rps, amplitude_rps, period_s } => (base_rps
                + amplitude_rps * (2.0 * std::f64::consts::PI * t / period_s).sin())
            .max(0.0),
        }
    }
}

/// One service's lifecycle inside an experiment: when it arrives, how its
/// load evolves, how many threads it runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// The service that arrives.
    pub service: Service,
    /// Arrival time, s.
    pub arrive_s: f64,
    /// Departure time, s (`f64::INFINITY` to stay forever).
    pub depart_s: f64,
    /// Worker threads.
    pub threads: usize,
    /// Load over time, with `t = 0` at *experiment* start (not arrival).
    pub load: LoadSchedule,
}

/// Why a hand-built arrival script is inconsistent (see
/// [`ArrivalScript::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptError {
    /// An event departs before it arrives.
    DepartsBeforeArrival {
        /// Index of the offending event in the input order.
        index: usize,
        /// The event's arrival time, s.
        arrive_s: f64,
        /// The event's (earlier) departure time, s.
        depart_s: f64,
    },
    /// An event arrives after the experiment has ended.
    ArrivesAfterEnd {
        /// Index of the offending event in the input order.
        index: usize,
        /// The event's arrival time, s.
        arrive_s: f64,
        /// The experiment duration, s.
        duration_s: f64,
    },
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::DepartsBeforeArrival { index, arrive_s, depart_s } => write!(
                f,
                "event {index} departs at {depart_s} s, before it arrives at {arrive_s} s"
            ),
            ScriptError::ArrivesAfterEnd { index, arrive_s, duration_s } => write!(
                f,
                "event {index} arrives at {arrive_s} s, after the experiment ends at {duration_s} s"
            ),
        }
    }
}

impl std::error::Error for ScriptError {}

/// A whole experiment's arrival script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalScript {
    /// Events, sorted by arrival time.
    pub events: Vec<ArrivalEvent>,
    /// Experiment duration, s.
    pub duration_s: f64,
}

impl ArrivalScript {
    /// Creates a script, sorting events by arrival time.
    ///
    /// Inconsistent events are repaired rather than trusted: an event whose
    /// departure precedes its arrival is clamped to a zero-length lifetime
    /// (`depart_s = arrive_s`, so it never becomes active), and events
    /// arriving after `duration_s` are dropped — harnesses index
    /// `script.events` positionally, and a never-reachable event would
    /// silently skew per-event accounting. Use [`ArrivalScript::try_new`]
    /// to reject such scripts instead of repairing them.
    pub fn new(mut events: Vec<ArrivalEvent>, duration_s: f64) -> Self {
        events.retain(|e| e.arrive_s <= duration_s);
        for e in &mut events {
            if e.depart_s < e.arrive_s {
                e.depart_s = e.arrive_s;
            }
        }
        events.sort_by(|a, b| a.arrive_s.total_cmp(&b.arrive_s));
        ArrivalScript { events, duration_s }
    }

    /// Like [`ArrivalScript::new`], but a script that would need repair is
    /// an error instead.
    ///
    /// # Errors
    ///
    /// [`ScriptError::DepartsBeforeArrival`] if any event's `depart_s` is
    /// earlier than its `arrive_s`; [`ScriptError::ArrivesAfterEnd`] if any
    /// event arrives after `duration_s`. Indices refer to the input order.
    pub fn try_new(events: Vec<ArrivalEvent>, duration_s: f64) -> Result<Self, ScriptError> {
        for (index, e) in events.iter().enumerate() {
            if e.depart_s < e.arrive_s {
                return Err(ScriptError::DepartsBeforeArrival {
                    index,
                    arrive_s: e.arrive_s,
                    depart_s: e.depart_s,
                });
            }
            if e.arrive_s > duration_s {
                return Err(ScriptError::ArrivesAfterEnd {
                    index,
                    arrive_s: e.arrive_s,
                    duration_s,
                });
            }
        }
        Ok(ArrivalScript::new(events, duration_s))
    }

    /// The Fig. 14 dynamic-load scenario: Moses arrives first; Img-dnn and
    /// Xapian follow; MongoDB arrives at t = 80 s; Login at t = 160 s; the
    /// unseen Txt-index at t = 190 s; Xapian's load steps up at t = 224 s.
    ///
    /// Loads are scaled so the peak aggregate (~115 % of one service's max)
    /// sits just inside the simulated testbed's co-location frontier, as the
    /// paper's loads did on theirs — the point of the scenario is the
    /// scheduling dynamics, not permanent overload.
    pub fn fig14() -> Self {
        let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
        ArrivalScript::new(
            vec![
                ArrivalEvent {
                    service: Service::Moses,
                    arrive_s: 0.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Moses.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::Moses, 30.0) },
                },
                ArrivalEvent {
                    service: Service::ImgDnn,
                    arrive_s: 10.0,
                    depart_s: f64::INFINITY,
                    threads: Service::ImgDnn.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::ImgDnn, 20.0) },
                },
                ArrivalEvent {
                    service: Service::Xapian,
                    arrive_s: 10.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Xapian.params().default_threads,
                    load: LoadSchedule::Steps {
                        steps: vec![
                            (10.0, pct(Service::Xapian, 15.0)),
                            (224.0, pct(Service::Xapian, 25.0)),
                        ],
                    },
                },
                ArrivalEvent {
                    service: Service::MongoDb,
                    arrive_s: 80.0,
                    depart_s: f64::INFINITY,
                    threads: Service::MongoDb.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::MongoDb, 10.0) },
                },
                ArrivalEvent {
                    service: Service::Login,
                    arrive_s: 160.0,
                    depart_s: f64::INFINITY,
                    threads: Service::Login.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::Login, 10.0) },
                },
                ArrivalEvent {
                    service: Service::TxtIndex,
                    arrive_s: 190.0,
                    depart_s: f64::INFINITY,
                    threads: Service::TxtIndex.params().default_threads,
                    load: LoadSchedule::Constant { rps: pct(Service::TxtIndex, 10.0) },
                },
            ],
            300.0,
        )
    }

    /// The Fig. 4 heuristic-scheduling scenario: Img-dnn, Xapian and Moses
    /// co-arrive at moderate loads and must be untangled by the scheduler.
    pub fn fig4() -> Self {
        let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
        let ev = |service: Service, p: f64| ArrivalEvent {
            service,
            arrive_s: 0.0,
            depart_s: f64::INFINITY,
            threads: service.params().default_threads,
            load: LoadSchedule::Constant { rps: pct(service, p) },
        };
        ArrivalScript::new(
            vec![ev(Service::ImgDnn, 40.0), ev(Service::Xapian, 40.0), ev(Service::Moses, 40.0)],
            120.0,
        )
    }

    /// Events active at time `t`.
    ///
    /// The constructor keeps `events` sorted by `arrive_s`, so a binary
    /// search bounds the candidates (everything past the partition point
    /// has not arrived yet) instead of scanning the whole script — the
    /// harnesses call this once per simulated second.
    pub fn active_at(&self, t: f64) -> impl Iterator<Item = &ArrivalEvent> {
        let arrived = self.events.partition_point(|e| e.arrive_s <= t);
        self.events[..arrived].iter().filter(move |e| t < e.depart_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let l = LoadSchedule::Constant { rps: 42.0 };
        assert_eq!(l.rps_at(0.0), 42.0);
        assert_eq!(l.rps_at(1e6), 42.0);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let l = LoadSchedule::Steps { steps: vec![(10.0, 100.0), (20.0, 300.0)] };
        assert_eq!(l.rps_at(0.0), 0.0);
        assert_eq!(l.rps_at(10.0), 100.0);
        assert_eq!(l.rps_at(19.9), 100.0);
        assert_eq!(l.rps_at(20.0), 300.0);
        assert_eq!(l.rps_at(1e9), 300.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let l = LoadSchedule::Ramp { start_s: 0.0, end_s: 10.0, from_rps: 0.0, to_rps: 100.0 };
        assert_eq!(l.rps_at(-5.0), 0.0);
        assert!((l.rps_at(5.0) - 50.0).abs() < 1e-9);
        assert_eq!(l.rps_at(15.0), 100.0);
    }

    #[test]
    fn diurnal_never_goes_negative() {
        let l = LoadSchedule::Diurnal { base_rps: 10.0, amplitude_rps: 50.0, period_s: 100.0 };
        for i in 0..200 {
            assert!(l.rps_at(i as f64) >= 0.0);
        }
    }

    #[test]
    fn fig14_script_matches_the_paper_timeline() {
        let s = ArrivalScript::fig14();
        assert_eq!(s.active_at(0.0).count(), 1, "only Moses at t=0");
        assert_eq!(s.active_at(15.0).count(), 3, "Img-dnn and Xapian joined");
        assert_eq!(s.active_at(100.0).count(), 4, "MongoDB joined at t=80");
        assert_eq!(s.active_at(200.0).count(), 6, "Login and Txt-index joined");
        // Xapian's load steps at t=224.
        let xapian = s.events.iter().find(|e| e.service == Service::Xapian).unwrap();
        assert!(xapian.load.rps_at(230.0) > xapian.load.rps_at(200.0));
    }

    #[test]
    fn script_sorts_events() {
        let e = |at: f64| ArrivalEvent {
            service: Service::Login,
            arrive_s: at,
            depart_s: f64::INFINITY,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        let s = ArrivalScript::new(vec![e(5.0), e(1.0), e(3.0)], 10.0);
        let times: Vec<f64> = s.events.iter().map(|e| e.arrive_s).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn inconsistent_events_are_clamped_or_rejected() {
        let e = |arrive: f64, depart: f64| ArrivalEvent {
            service: Service::Login,
            arrive_s: arrive,
            depart_s: depart,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        // depart < arrive: clamped to a zero-length lifetime, never active.
        let s = ArrivalScript::new(vec![e(5.0, 2.0)], 10.0);
        assert_eq!(s.events[0].depart_s, 5.0);
        assert_eq!(s.active_at(5.0).count(), 0);
        assert_eq!(s.active_at(3.0).count(), 0);
        // arrival beyond the experiment horizon: dropped.
        let s = ArrivalScript::new(vec![e(0.0, 4.0), e(11.0, 20.0)], 10.0);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].arrive_s, 0.0);
        // try_new refuses instead of repairing, with the input index.
        assert_eq!(
            ArrivalScript::try_new(vec![e(0.0, 4.0), e(5.0, 2.0)], 10.0),
            Err(ScriptError::DepartsBeforeArrival { index: 1, arrive_s: 5.0, depart_s: 2.0 })
        );
        assert_eq!(
            ArrivalScript::try_new(vec![e(11.0, 20.0)], 10.0),
            Err(ScriptError::ArrivesAfterEnd { index: 0, arrive_s: 11.0, duration_s: 10.0 })
        );
        assert!(ArrivalScript::try_new(vec![e(0.0, 4.0)], 10.0).is_ok());
    }

    #[test]
    fn active_at_matches_a_linear_scan() {
        // Pin the binary-search fast path to the obviously-correct filter,
        // including ties at arrival instants and shared arrival times.
        let e = |arrive: f64, depart: f64| ArrivalEvent {
            service: Service::Login,
            arrive_s: arrive,
            depart_s: depart,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        let mut events = Vec::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d; // fixed-seed xorshift
        for _ in 0..40 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let arrive = (x % 100) as f64;
            let depart =
                if x.is_multiple_of(7) { f64::INFINITY } else { arrive + ((x >> 8) % 30) as f64 };
            events.push(e(arrive, depart));
        }
        let s = ArrivalScript::new(events.clone(), 100.0);
        for tenth in 0..=1000 {
            let t = tenth as f64 / 10.0;
            let fast: Vec<&ArrivalEvent> = s.active_at(t).collect();
            let slow: Vec<&ArrivalEvent> =
                s.events.iter().filter(|e| e.arrive_s <= t && t < e.depart_s).collect();
            assert_eq!(fast, slow, "active_at diverged from the linear scan at t={t}");
        }
    }

    #[test]
    fn departures_end_activity() {
        let e = ArrivalEvent {
            service: Service::Ads,
            arrive_s: 0.0,
            depart_s: 10.0,
            threads: 1,
            load: LoadSchedule::Constant { rps: 1.0 },
        };
        let s = ArrivalScript::new(vec![e], 20.0);
        assert_eq!(s.active_at(5.0).count(), 1);
        assert_eq!(s.active_at(10.0).count(), 0);
    }
}

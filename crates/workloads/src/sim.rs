//! The co-location server simulator: an [`Substrate`] implementation that
//! places analytic services on a [`Topology`], resolves cross-service
//! contention to a fixed point each tick, and synthesizes Table-3 counters.

use crate::perf::{self, PerfInput, PerfOutcome};
use crate::{Service, ServiceParams};
use osml_platform::{
    Allocation, AppId, CoreSet, CounterSample, LatencyStats, PlatformError, Substrate, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Throughput discount per additional service time-sharing a core.
const CORE_SHARE_PENALTY: f64 = 0.06;

/// Yield of one hardware thread when its HT sibling is also busy.
const HT_SHARED_YIELD: f64 = 0.65;

/// Iterations of the bandwidth-contention fixed point. The damped update
/// converges geometrically; 12 rounds leave residuals ≪ 1 %.
const FIXED_POINT_ITERS: usize = 12;

/// Gain of the DRAM-bus queueing stall as total traffic approaches the bus
/// capacity (`stall = 1 + gain * pressure^exponent`).
const DRAM_QUEUE_GAIN: f64 = 4.0;

/// Exponent of the DRAM-bus queueing stall: gentle below ~50 % of practical
/// bandwidth, steep beyond it — the familiar DDR4 loaded-latency curve.
const DRAM_QUEUE_EXPONENT: i32 = 4;

/// Fraction of the catalog bandwidth that is practically achievable before
/// queueing dominates (bank conflicts, refresh, read/write turnarounds).
const PRACTICAL_BW_FRACTION: f64 = 0.7;

/// Seconds after an allocation change during which samples carry extra
/// warm-up noise (cache refill, thread re-balancing) — the reason the paper
/// samples for 2 s before trusting Model-A's inputs (§V-B).
const WARMUP_WINDOW_S: f64 = 2.0;

/// Extra multiplicative noise sigma during the warm-up window.
const WARMUP_NOISE_SIGMA: f64 = 0.25;

/// Configuration of a simulated server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware geometry; defaults to the paper's testbed.
    pub topology: Topology,
    /// Standard deviation of the multiplicative log-normal latency noise
    /// (0.02 ≈ ±2 % run-to-run jitter). Zero gives a fully deterministic
    /// machine, which the ground-truth sweeps use.
    pub noise_sigma: f64,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { topology: Topology::xeon_e5_2697_v4(), noise_sigma: 0.02, seed: 0x05_51_1a_b5 }
    }
}

impl SimConfig {
    /// A noiseless configuration, for ground-truth sweeps and property tests.
    pub fn deterministic() -> Self {
        SimConfig { noise_sigma: 0.0, ..SimConfig::default() }
    }
}

/// How a service is launched: which service, how many threads, what load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// Which service binary is started.
    pub service: Service,
    /// Number of worker threads.
    pub threads: usize,
    /// Offered load, requests per second.
    pub offered_rps: f64,
}

impl LaunchSpec {
    /// Launches `service` with its default thread count at `offered_rps`.
    pub fn new(service: Service, offered_rps: f64) -> Self {
        LaunchSpec { service, threads: service.params().default_threads, offered_rps }
    }

    /// Launches `service` at `percent` of its nominal maximum load.
    pub fn at_percent_load(service: Service, percent: f64) -> Self {
        LaunchSpec::new(service, service.params().nominal_max_rps() * percent / 100.0)
    }
}

#[derive(Debug, Clone)]
struct AppState {
    spec: LaunchSpec,
    alloc: Allocation,
    mem_stall: f64,
    outcome: PerfOutcome,
    sample: CounterSample,
    latency: LatencyStats,
    /// Simulated time of the last allocation change (for warm-up noise).
    changed_at: f64,
}

/// A simulated co-location server.
///
/// # Example
///
/// ```
/// use osml_platform::{Allocation, CoreSet, MbaThrottle, Substrate, WayMask};
/// use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
///
/// let mut server = SimServer::new(SimConfig::deterministic());
/// let alloc = Allocation::new(
///     CoreSet::first_n(16),
///     WayMask::contiguous(0, 12)?,
///     MbaThrottle::unthrottled(),
/// );
/// let id = server.launch(LaunchSpec::new(Service::Moses, 2200.0), alloc)?;
/// server.advance(2.0);
/// let lat = server.latency(id).unwrap();
/// assert!(lat.p95_ms < lat.qos_target_ms, "16 cores / 12 ways meets Moses QoS");
/// # Ok::<(), osml_platform::PlatformError>(())
/// ```
#[derive(Debug)]
pub struct SimServer {
    topo: Topology,
    apps: BTreeMap<AppId, AppState>,
    next_id: u64,
    clock: f64,
    noise_sigma: f64,
    rng: StdRng,
}

impl SimServer {
    /// Creates a server with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        SimServer {
            topo: config.topology,
            apps: BTreeMap::new(),
            next_id: 0,
            clock: 0.0,
            noise_sigma: config.noise_sigma,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Creates a deterministic server on the paper's testbed topology.
    pub fn deterministic() -> Self {
        SimServer::new(SimConfig::deterministic())
    }

    /// Places a new service on the machine.
    ///
    /// Counters and latency are available after the next [`Substrate::advance`].
    ///
    /// # Errors
    ///
    /// Fails if the allocation is invalid for this machine's topology.
    pub fn launch(&mut self, spec: LaunchSpec, alloc: Allocation) -> Result<AppId, PlatformError> {
        alloc.validate(&self.topo)?;
        let id = AppId(self.next_id);
        self.next_id += 1;
        let mut placeholder = Self::empty_state(spec, alloc);
        placeholder.changed_at = self.clock;
        self.apps.insert(id, placeholder);
        self.recompute();
        Ok(id)
    }

    /// Changes a running service's offered load (the Fig. 14 load steps).
    ///
    /// # Errors
    ///
    /// Fails if `id` is not placed.
    pub fn set_load(&mut self, id: AppId, offered_rps: f64) -> Result<(), PlatformError> {
        let app = self.apps.get_mut(&id).ok_or(PlatformError::UnknownApp { id: id.0 })?;
        app.spec.offered_rps = offered_rps;
        self.recompute();
        Ok(())
    }

    /// The service running under `id`, if placed.
    pub fn service_of(&self, id: AppId) -> Option<Service> {
        self.apps.get(&id).map(|a| a.spec.service)
    }

    /// The launch spec of `id`, if placed.
    pub fn spec_of(&self, id: AppId) -> Option<LaunchSpec> {
        self.apps.get(&id).map(|a| a.spec)
    }

    /// Full model outcome for `id` (richer than the public counters), if
    /// placed. Ground-truth tooling uses this; schedulers must not.
    pub fn outcome(&self, id: AppId) -> Option<PerfOutcome> {
        self.apps.get(&id).map(|a| a.outcome)
    }

    fn empty_state(spec: LaunchSpec, alloc: Allocation) -> AppState {
        let zero_outcome = PerfOutcome {
            service_time_ms: 0.0,
            mean_ms: 0.0,
            p95_ms: 0.0,
            utilization: 0.0,
            achieved_rps: 0.0,
            capacity_rps: 0.0,
            misses_per_sec: 0.0,
            bw_demand_gbps: 0.0,
            ipc: 0.0,
            cpu_usage: 0.0,
            llc_occupancy_mb: 0.0,
        };
        AppState {
            spec,
            alloc,
            mem_stall: 1.0,
            changed_at: 0.0,
            outcome: zero_outcome,
            sample: CounterSample {
                ipc: 0.0,
                llc_misses_per_sec: 0.0,
                mbl_gbps: 0.0,
                cpu_usage: 0.0,
                memory_util_gb: 0.0,
                virt_memory_gb: 0.0,
                res_memory_gb: 0.0,
                llc_occupancy_mb: 0.0,
                allocated_cores: alloc.cores.count(),
                allocated_ways: alloc.ways.count(),
                frequency_ghz: 0.0,
                response_latency_ms: 0.0,
            },
            latency: LatencyStats {
                mean_ms: 0.0,
                p95_ms: 0.0,
                achieved_rps: 0.0,
                offered_rps: spec.offered_rps,
                qos_target_ms: spec.service.params().qos_ms,
            },
        }
    }

    /// Effective LLC capacity per app after splitting shared ways.
    ///
    /// Each way's capacity is divided among its holders in proportion to
    /// their working-set pressure, the first-order behaviour of an
    /// LRU-managed shared cache.
    fn effective_cache(&self) -> BTreeMap<AppId, f64> {
        let way_mb = self.topo.way_mb();
        let mut cache: BTreeMap<AppId, f64> = self.apps.keys().map(|&id| (id, 0.0)).collect();
        for way in 0..self.topo.llc_ways() {
            let bit = 1u32 << way;
            let holders: Vec<(AppId, f64)> = self
                .apps
                .iter()
                .filter(|(_, a)| a.alloc.ways.bits() & bit != 0)
                .map(|(&id, a)| (id, a.spec.service.params().wss_mb))
                .collect();
            let total: f64 = holders.iter().map(|(_, w)| w).sum();
            for (id, w) in holders {
                *cache.get_mut(&id).expect("holder is an app") += way_mb * w / total;
            }
        }
        cache
    }

    /// Effective core capacity per app after splitting time-shared cores,
    /// plus the time-slicing penalty factor applied to service time.
    fn effective_cores(&self) -> BTreeMap<AppId, (f64, f64)> {
        let mut out: BTreeMap<AppId, (f64, f64)> = BTreeMap::new();
        // Which logical cores are busy at all (for HT yield).
        let mut busy = CoreSet::new();
        for a in self.apps.values() {
            busy = busy.union(a.alloc.cores);
        }
        for (&id, app) in &self.apps {
            let mask = app.alloc.cores;
            let my_weight = app.spec.threads as f64 / mask.count().max(1) as f64;
            let mut eff = 0.0;
            let mut holder_sum = 0.0;
            for core in mask.iter() {
                if core >= self.topo.logical_cores() {
                    continue;
                }
                // Demand-weighted share of this core among the apps pinned to it.
                let mut total_weight = 0.0;
                let mut holders = 0u32;
                for other in self.apps.values() {
                    if other.alloc.cores.contains(core) {
                        total_weight +=
                            other.spec.threads as f64 / other.alloc.cores.count().max(1) as f64;
                        holders += 1;
                    }
                }
                let share = if total_weight > 0.0 { my_weight / total_weight } else { 1.0 };
                let sibling_busy =
                    self.topo.sibling_of(core).map(|s| busy.contains(s)).unwrap_or(false);
                let yield_factor = if sibling_busy { HT_SHARED_YIELD } else { 1.0 };
                eff += share * yield_factor;
                holder_sum += holders as f64;
            }
            let avg_holders = holder_sum / mask.count().max(1) as f64;
            let penalty = 1.0 + CORE_SHARE_PENALTY * (avg_holders - 1.0).max(0.0);
            out.insert(id, (eff, penalty));
        }
        out
    }

    /// Re-resolves the machine's contention equilibrium. Called whenever the
    /// population, allocations or loads change, and on every `advance`.
    fn recompute(&mut self) {
        if self.apps.is_empty() {
            return;
        }
        let cache = self.effective_cache();
        let cores = self.effective_cores();
        let bw_total = self.topo.memory_bw_gbps();
        let freq = self.topo.frequency_ghz();

        // Damped fixed point on the per-app memory-stall multipliers: every
        // service's miss traffic loads the shared DRAM bus; as the bus
        // approaches capacity, queueing there stretches everyone's per-miss
        // stall, which lowers throughput, which sheds traffic — a classic
        // congestion equilibrium. MBA caps add a per-app term.
        for _ in 0..FIXED_POINT_ITERS {
            let mut achieved_bw: BTreeMap<AppId, f64> = BTreeMap::new();
            for &id in self.apps.keys().collect::<Vec<_>>() {
                let out = self.evaluate_app(id, &cache, &cores, freq);
                achieved_bw.insert(id, out.bw_demand_gbps);
            }
            let total: f64 = achieved_bw.values().sum();
            let pressure = total / (bw_total * PRACTICAL_BW_FRACTION);
            let bus_stall = 1.0 + DRAM_QUEUE_GAIN * pressure.powi(DRAM_QUEUE_EXPONENT);
            for (&id, app) in self.apps.iter_mut() {
                let cap = app.alloc.mba.fraction() * bw_total;
                let mba_stall = (achieved_bw[&id] / cap).max(1.0);
                let target = bus_stall * mba_stall;
                app.mem_stall = 0.5 * app.mem_stall + 0.5 * target;
            }
        }

        // Final evaluation and counter synthesis.
        let ids: Vec<AppId> = self.apps.keys().copied().collect();
        for id in ids {
            let outcome = self.evaluate_app(id, &cache, &cores, freq);
            let warm = self.clock - self.apps[&id].changed_at < WARMUP_WINDOW_S;
            let noise = self.latency_noise_with(if warm { WARMUP_NOISE_SIGMA } else { 0.0 });
            // During warm-up the PMU counters are polluted too (cache
            // refill inflates misses and depresses IPC), which is why the
            // paper profiles for 2 s before trusting Model-A (§V-B).
            let counter_noise =
                self.latency_noise_with(if warm { WARMUP_NOISE_SIGMA } else { 0.0 });
            let app = self.apps.get_mut(&id).expect("id is placed");
            let params = app.spec.service.params();
            let res_gb =
                params.res_memory_gb + params.memory_per_thread_gb * app.spec.threads as f64;
            app.outcome = outcome;
            app.sample = CounterSample {
                ipc: outcome.ipc / counter_noise,
                llc_misses_per_sec: outcome.misses_per_sec * counter_noise,
                mbl_gbps: outcome.bw_demand_gbps * counter_noise,
                cpu_usage: outcome.cpu_usage * counter_noise,
                memory_util_gb: res_gb,
                virt_memory_gb: res_gb * 1.6,
                res_memory_gb: res_gb,
                llc_occupancy_mb: outcome.llc_occupancy_mb,
                allocated_cores: app.alloc.cores.count(),
                allocated_ways: app.alloc.ways.count(),
                frequency_ghz: freq,
                response_latency_ms: outcome.mean_ms * noise,
            };
            app.latency = LatencyStats {
                mean_ms: outcome.mean_ms * noise,
                p95_ms: outcome.p95_ms * noise,
                achieved_rps: outcome.achieved_rps,
                offered_rps: app.spec.offered_rps,
                qos_target_ms: params.qos_ms,
            };
        }
    }

    fn evaluate_app(
        &self,
        id: AppId,
        cache: &BTreeMap<AppId, f64>,
        cores: &BTreeMap<AppId, (f64, f64)>,
        freq: f64,
    ) -> PerfOutcome {
        let app = &self.apps[&id];
        let (eff_cores, penalty) = cores[&id];
        let params: &ServiceParams = app.spec.service.params();
        let input = PerfInput {
            threads: app.spec.threads,
            offered_rps: app.spec.offered_rps,
            effective_cores: eff_cores / penalty,
            logical_cores: app.alloc.cores.count(),
            cache_mb: cache[&id],
            frequency_ghz: freq,
            nominal_frequency_ghz: self.topo.frequency_ghz(),
            mem_stall: app.mem_stall,
        };
        perf::evaluate(params, &input)
    }

    fn latency_noise_with(&mut self, extra_sigma: f64) -> f64 {
        let sigma = self.noise_sigma + if self.noise_sigma > 0.0 { extra_sigma } else { 0.0 };
        if sigma == 0.0 {
            return 1.0;
        }
        // Log-normal multiplicative jitter via Box-Muller.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    }
}

impl Substrate for SimServer {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
        alloc.validate(&self.topo)?;
        let clock = self.clock;
        let app = self.apps.get_mut(&id).ok_or(PlatformError::UnknownApp { id: id.0 })?;
        if app.alloc != alloc {
            app.changed_at = clock;
        }
        app.alloc = alloc;
        self.recompute();
        Ok(())
    }

    fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
        self.apps.remove(&id).ok_or(PlatformError::UnknownApp { id: id.0 })?;
        self.recompute();
        Ok(())
    }

    fn advance(&mut self, seconds: f64) {
        self.clock += seconds.max(0.0);
        self.recompute();
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn apps(&self) -> Vec<AppId> {
        self.apps.keys().copied().collect()
    }

    fn allocation(&self, id: AppId) -> Option<Allocation> {
        self.apps.get(&id).map(|a| a.alloc)
    }

    fn sample(&self, id: AppId) -> Option<CounterSample> {
        self.apps.get(&id).map(|a| a.sample)
    }

    fn latency(&self, id: AppId) -> Option<LatencyStats> {
        self.apps.get(&id).map(|a| a.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::{MbaThrottle, WayMask};

    fn alloc(cores: std::ops::Range<usize>, first_way: usize, ways: usize) -> Allocation {
        Allocation::new(
            CoreSet::from_cores(cores),
            WayMask::contiguous(first_way, ways).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    #[test]
    fn solo_service_meets_qos_with_ample_resources() {
        let mut s = SimServer::deterministic();
        let id = s.launch(LaunchSpec::new(Service::Xapian, 3000.0), alloc(0..12, 0, 16)).unwrap();
        s.advance(2.0);
        let lat = s.latency(id).unwrap();
        assert!(!lat.violates_qos(), "p95 {} > {}", lat.p95_ms, lat.qos_target_ms);
        assert!((lat.achieved_rps - 3000.0).abs() < 1.0);
    }

    #[test]
    fn starved_service_violates_qos() {
        let mut s = SimServer::deterministic();
        let id = s.launch(LaunchSpec::new(Service::Xapian, 5000.0), alloc(0..2, 0, 2)).unwrap();
        s.advance(2.0);
        assert!(s.latency(id).unwrap().violates_qos());
    }

    #[test]
    fn co_runner_sharing_ways_slows_both() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::Moses, 2200.0), alloc(0..8, 0, 10)).unwrap();
        s.advance(2.0);
        let solo_p95 = s.latency(a).unwrap().p95_ms;

        // A cache-hungry neighbour overlapping all ten of Moses' ways.
        let b = s.launch(LaunchSpec::new(Service::Specjbb, 9000.0), alloc(8..20, 0, 10)).unwrap();
        s.advance(2.0);
        let shared_p95 = s.latency(a).unwrap().p95_ms;
        assert!(
            shared_p95 > solo_p95 * 1.5,
            "sharing all ways should hurt: solo {solo_p95:.2} vs shared {shared_p95:.2}"
        );
        assert!(s.latency(b).is_some());
    }

    #[test]
    fn disjoint_partitions_isolate_cache() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::Moses, 2200.0), alloc(0..8, 0, 10)).unwrap();
        s.advance(2.0);
        let solo_p95 = s.latency(a).unwrap().p95_ms;

        // Same neighbour but on disjoint ways and cores; only bandwidth is
        // shared, so Moses should degrade far less than under way sharing.
        let _b = s.launch(LaunchSpec::new(Service::ImgDnn, 2000.0), alloc(8..16, 10, 10)).unwrap();
        s.advance(2.0);
        let iso_p95 = s.latency(a).unwrap().p95_ms;
        assert!(
            iso_p95 < solo_p95 * 1.3,
            "disjoint partitions should isolate: solo {solo_p95:.2} vs {iso_p95:.2}"
        );
    }

    #[test]
    fn core_sharing_splits_capacity() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::ImgDnn, 3000.0), alloc(0..8, 0, 4)).unwrap();
        s.advance(1.0);
        let solo_cap = s.outcome(a).unwrap().capacity_rps;
        let _b = s.launch(LaunchSpec::new(Service::Nginx, 100_000.0), alloc(0..8, 4, 4)).unwrap();
        s.advance(1.0);
        let shared_cap = s.outcome(a).unwrap().capacity_rps;
        assert!(
            shared_cap < solo_cap * 0.75,
            "time-shared cores must cut capacity: {solo_cap:.0} -> {shared_cap:.0}"
        );
    }

    #[test]
    fn bandwidth_saturation_couples_services() {
        let mut s = SimServer::deterministic();
        // Two bandwidth-hungry services with tiny cache allocations so their
        // miss traffic is huge.
        let a = s.launch(LaunchSpec::new(Service::Moses, 2800.0), alloc(0..9, 0, 2)).unwrap();
        s.advance(1.0);
        let lone = s.outcome(a).unwrap().service_time_ms;
        let _b = s.launch(LaunchSpec::new(Service::Specjbb, 15_000.0), alloc(9..18, 2, 2)).unwrap();
        s.advance(1.0);
        let contended = s.outcome(a).unwrap().service_time_ms;
        assert!(
            contended > lone * 1.02,
            "DRAM contention should stretch service time: {lone:.3} -> {contended:.3}"
        );
    }

    #[test]
    fn mba_throttle_slows_a_bandwidth_hog() {
        let mut s = SimServer::deterministic();
        let mut a = alloc(0..9, 0, 2);
        let id = s.launch(LaunchSpec::new(Service::Moses, 2800.0), a).unwrap();
        s.advance(1.0);
        let free = s.outcome(id).unwrap().p95_ms;
        a.mba = MbaThrottle::percent(10).unwrap();
        s.reallocate(id, a).unwrap();
        s.advance(1.0);
        let throttled = s.outcome(id).unwrap().p95_ms;
        assert!(throttled > free, "a 10% MBA cap must hurt: {free:.2} -> {throttled:.2}");
    }

    #[test]
    fn remove_restores_the_neighbours() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::Moses, 2200.0), alloc(0..8, 0, 10)).unwrap();
        let b = s.launch(LaunchSpec::new(Service::Specjbb, 12_000.0), alloc(8..20, 0, 10)).unwrap();
        s.advance(2.0);
        let contended = s.latency(a).unwrap().p95_ms;
        s.remove(b).unwrap();
        s.advance(2.0);
        let relieved = s.latency(a).unwrap().p95_ms;
        assert!(relieved < contended);
        assert_eq!(s.apps().len(), 1);
    }

    #[test]
    fn set_load_moves_latency() {
        let mut s = SimServer::deterministic();
        let id = s.launch(LaunchSpec::new(Service::Masstree, 2000.0), alloc(0..6, 0, 12)).unwrap();
        s.advance(1.0);
        let low = s.latency(id).unwrap().p95_ms;
        s.set_load(id, 4600.0).unwrap();
        s.advance(1.0);
        let high = s.latency(id).unwrap().p95_ms;
        assert!(high > low);
        assert!(s.set_load(AppId(99), 1.0).is_err());
    }

    #[test]
    fn idle_accounting_via_substrate() {
        let mut s = SimServer::deterministic();
        let _ = s.launch(LaunchSpec::new(Service::Login, 300.0), alloc(0..2, 0, 2)).unwrap();
        assert_eq!(s.idle_cores().count(), 34);
        assert_eq!(s.idle_way_count(), 18);
        let m = s.find_free_ways(18, None).unwrap();
        assert_eq!(m.first(), 2);
    }

    #[test]
    fn counters_are_synthesized() {
        let mut s = SimServer::deterministic();
        let id = s.launch(LaunchSpec::new(Service::MongoDb, 5000.0), alloc(0..10, 0, 10)).unwrap();
        s.advance(2.0);
        let c = s.sample(id).unwrap();
        assert!(c.ipc > 0.0 && c.ipc <= 2.5);
        assert!(c.llc_misses_per_sec > 0.0);
        assert!(c.mbl_gbps > 0.0);
        assert!(c.cpu_usage > 0.0);
        assert!(c.res_memory_gb > 0.0 && c.virt_memory_gb > c.res_memory_gb);
        assert_eq!(c.allocated_cores, 10);
        assert_eq!(c.allocated_ways, 10);
        assert!((c.frequency_ghz - 2.3).abs() < 1e-12);
        assert!(c.response_latency_ms > 0.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = SimServer::new(SimConfig { seed, ..SimConfig::default() });
            let id =
                s.launch(LaunchSpec::new(Service::Xapian, 4000.0), alloc(0..10, 0, 10)).unwrap();
            s.advance(2.0);
            s.latency(id).unwrap().p95_ms
        };
        assert_eq!(run(7).to_bits(), run(7).to_bits());
        assert_ne!(run(7).to_bits(), run(8).to_bits());
    }

    #[test]
    fn clock_advances() {
        let mut s = SimServer::deterministic();
        assert_eq!(s.now(), 0.0);
        s.advance(2.0);
        s.advance(1.5);
        assert!((s.now() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn launch_rejects_invalid_allocation() {
        let mut s = SimServer::deterministic();
        let bad = Allocation::new(
            CoreSet::from_cores([40]),
            WayMask::first_n(4),
            MbaThrottle::unthrottled(),
        );
        assert!(s.launch(LaunchSpec::new(Service::Ads, 100.0), bad).is_err());
    }
}

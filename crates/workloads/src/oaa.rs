//! Ground-truth latency grids, Resource Cliff (RCliff) and Optimal
//! Allocation Area (OAA) extraction.
//!
//! This module plays two roles:
//!
//! 1. It regenerates the paper's Fig. 1–3 analyses (latency heatmaps over
//!    the (cores, ways) plane, the red RCliff frontier, the green OAA).
//! 2. It labels training data for Model-A: given a service, thread count and
//!    load, the sweep yields the OAA point, the RCliff point and the OAA
//!    bandwidth that Model-A learns to predict from runtime counters.
//!
//! Terminology, following §III-A of the paper:
//!
//! * the **RCliff** point for a given load is the *minimal* `<cores, ways>`
//!   allocation that still meets QoS — depriving one more core or way from
//!   it produces a catastrophic slowdown;
//! * the **OAA** sits a safety margin above the cliff (the paper's example:
//!   cliff at `<3 cores, 6 MB>` → OAA at `<5 cores, 8 MB>`); among
//!   QoS-feasible allocations OSML prefers the one using the fewest ways,
//!   then the fewest cores (§III-B: "LLC ways should be allocated as less as
//!   possible").

use crate::perf::{self, PerfInput};
use crate::{Service, SimConfig, SimServer};
use osml_platform::{CoreSet, Substrate, Topology};
use serde::{Deserialize, Serialize};

/// Safety margin, in cores and ways, that the OAA keeps above the RCliff.
pub const OAA_MARGIN: usize = 1;

/// A `<cores, ways>` allocation point in the scheduling plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocPoint {
    /// Number of logical cores.
    pub cores: usize,
    /// Number of LLC ways.
    pub ways: usize,
}

impl AllocPoint {
    /// Builds a point.
    pub fn new(cores: usize, ways: usize) -> Self {
        AllocPoint { cores, ways }
    }

    /// Total scarce resources committed (the tie-break metric used when
    /// comparing candidate allocations).
    pub fn total(&self) -> usize {
        self.cores + self.ways
    }
}

/// The p95-latency surface of one service over the (cores, ways) plane at a
/// fixed thread count and offered load — one panel of the paper's Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyGrid {
    /// Service swept.
    pub service: Service,
    /// Threads launched.
    pub threads: usize,
    /// Offered load, RPS.
    pub offered_rps: f64,
    /// Maximum cores swept (grid is `1..=max_cores`).
    pub max_cores: usize,
    /// Maximum ways swept (grid is `1..=max_ways`).
    pub max_ways: usize,
    /// `p95[(cores-1) * max_ways + (ways-1)]`, ms.
    pub p95_ms: Vec<f64>,
    /// Bandwidth demand at each cell, GB/s (used for the OAA bandwidth
    /// label).
    pub bw_gbps: Vec<f64>,
}

impl LatencyGrid {
    /// Sweeps the full (cores, ways) plane for `service` on `topo`.
    ///
    /// Cores are picked spread-first across physical cores (the deployment
    /// policy of `osml-platform`); the sweep runs on a dedicated noiseless
    /// simulator so cells are exact model evaluations.
    pub fn sweep(
        topo: &Topology,
        service: Service,
        threads: usize,
        offered_rps: f64,
    ) -> LatencyGrid {
        let max_cores = topo.logical_cores();
        let max_ways = topo.llc_ways();
        let mut p95_ms = Vec::with_capacity(max_cores * max_ways);
        let mut bw_gbps = Vec::with_capacity(max_cores * max_ways);
        let all = CoreSet::all(topo);
        for cores in 1..=max_cores {
            let picked = all.pick_spread(topo, cores).expect("cores <= machine size");
            let eff = picked.effective_cores(topo);
            for ways in 1..=max_ways {
                let input = PerfInput {
                    threads,
                    offered_rps,
                    effective_cores: eff,
                    logical_cores: cores,
                    cache_mb: ways as f64 * topo.way_mb(),
                    frequency_ghz: topo.frequency_ghz(),
                    nominal_frequency_ghz: topo.frequency_ghz(),
                    mem_stall: 1.0,
                };
                let out = perf::evaluate(service.params(), &input);
                p95_ms.push(out.p95_ms);
                bw_gbps.push(out.bw_demand_gbps);
            }
        }
        LatencyGrid { service, threads, offered_rps, max_cores, max_ways, p95_ms, bw_gbps }
    }

    /// p95 latency at `<cores, ways>`, ms.
    ///
    /// # Panics
    ///
    /// Panics if the point is outside the swept grid.
    pub fn p95(&self, p: AllocPoint) -> f64 {
        assert!(p.cores >= 1 && p.cores <= self.max_cores, "cores out of grid");
        assert!(p.ways >= 1 && p.ways <= self.max_ways, "ways out of grid");
        self.p95_ms[(p.cores - 1) * self.max_ways + (p.ways - 1)]
    }

    /// Bandwidth demand at `<cores, ways>`, GB/s.
    ///
    /// # Panics
    ///
    /// Panics as [`LatencyGrid::p95`] does.
    pub fn bandwidth(&self, p: AllocPoint) -> f64 {
        assert!(p.cores >= 1 && p.cores <= self.max_cores, "cores out of grid");
        assert!(p.ways >= 1 && p.ways <= self.max_ways, "ways out of grid");
        self.bw_gbps[(p.cores - 1) * self.max_ways + (p.ways - 1)]
    }

    /// Whether the service meets QoS at this point.
    pub fn meets_qos(&self, p: AllocPoint) -> bool {
        self.p95(p) <= self.service.params().qos_ms
    }

    /// The RCliff frontier: for each core count, the minimal way count that
    /// meets QoS (`None` where no way count suffices). This is the red line
    /// of Fig. 1.
    pub fn rcliff_frontier(&self) -> Vec<Option<usize>> {
        (1..=self.max_cores)
            .map(|cores| {
                (1..=self.max_ways).find(|&ways| self.meets_qos(AllocPoint::new(cores, ways)))
            })
            .collect()
    }

    /// The RCliff *point*: among the frontier allocations (for each core
    /// count, the minimal QoS-feasible way count) the one committing the
    /// fewest total resources, tie-broken towards fewer ways (the paper
    /// treats LLC ways as the scarcer resource, §III-B). `None` if QoS is
    /// infeasible anywhere on the grid (load too high).
    pub fn rcliff(&self) -> Option<AllocPoint> {
        let mut best: Option<AllocPoint> = None;
        for cores in 1..=self.max_cores {
            if let Some(ways) =
                (1..=self.max_ways).find(|&w| self.meets_qos(AllocPoint::new(cores, w)))
            {
                let cand = AllocPoint::new(cores, ways);
                best = match best {
                    None => Some(cand),
                    Some(b) => {
                        if (cand.total(), cand.ways) < (b.total(), b.ways) {
                            Some(cand)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        best
    }

    /// The OAA point: the RCliff plus a safety margin of [`OAA_MARGIN`] in
    /// both dimensions (clamped to the machine), nudged further if the
    /// margin cell itself still violates QoS.
    pub fn oaa(&self) -> Option<AllocPoint> {
        self.oaa_with_margin(OAA_MARGIN)
    }

    /// [`LatencyGrid::oaa`] with an explicit cliff margin (the ablation knob
    /// for DESIGN.md's "OAA margin" study).
    pub fn oaa_with_margin(&self, margin: usize) -> Option<AllocPoint> {
        let cliff = self.rcliff()?;
        let mut p = AllocPoint::new(
            (cliff.cores + margin).min(self.max_cores),
            (cliff.ways + margin).min(self.max_ways),
        );
        // Grow until the point itself is QoS-clean (it normally already is).
        while !self.meets_qos(p) {
            if p.cores < self.max_cores {
                p.cores += 1;
            } else if p.ways < self.max_ways {
                p.ways += 1;
            } else {
                return None;
            }
        }
        Some(p)
    }

    /// Bandwidth requirement at the OAA (the third output of Model-A).
    pub fn oaa_bandwidth_gbps(&self) -> Option<f64> {
        self.oaa().map(|p| self.bandwidth(p))
    }

    /// The largest latency ratio across any single-step resource deprivation
    /// from a QoS-feasible cell — the cliff's "height". Moses/Xapian/Sphinx
    /// show 100×+ here, MongoDB only a few × (Fig. 1).
    pub fn cliff_magnitude(&self) -> f64 {
        let mut worst: f64 = 1.0;
        for cores in 1..=self.max_cores {
            for ways in 1..=self.max_ways {
                let here = AllocPoint::new(cores, ways);
                if !self.meets_qos(here) {
                    continue;
                }
                let p95 = self.p95(here);
                if cores > 1 {
                    worst = worst.max(self.p95(AllocPoint::new(cores - 1, ways)) / p95);
                }
                if ways > 1 {
                    worst = worst.max(self.p95(AllocPoint::new(cores, ways - 1)) / p95);
                }
            }
        }
        worst
    }
}

/// RCliff positions across the offered loads of Table 1 — the Fig. 2
/// analysis. Returns `(rps, rcliff)` pairs; infeasible loads yield `None`.
pub fn rcliff_shift(topo: &Topology, service: Service) -> Vec<(f64, Option<AllocPoint>)> {
    let threads = service.params().default_threads;
    service
        .params()
        .table1_rps
        .iter()
        .map(|&rps| (rps, LatencyGrid::sweep(topo, service, threads, rps).rcliff()))
        .collect()
}

/// Maximum load (RPS) the service sustains within QoS when running alone on
/// the whole machine — the definition behind Table 1's "max load" and the
/// "% of max load" axes of Figs. 10–12. Found by bisection on the simulator.
pub fn max_load(topo: &Topology, service: Service) -> f64 {
    let params = service.params();
    let threads = params.default_threads;
    let meets = |rps: f64| -> bool {
        let mut server =
            SimServer::new(SimConfig { topology: topo.clone(), noise_sigma: 0.0, seed: 0 });
        let alloc = osml_platform::Allocation::whole_machine(topo);
        let id = server
            .launch(crate::LaunchSpec { service, threads, offered_rps: rps }, alloc)
            .expect("whole-machine allocation is valid");
        server.advance(2.0);
        !server.latency(id).expect("app placed").violates_qos()
    };
    let mut lo: f64 = 0.0;
    let mut hi = params.nominal_max_rps() * 4.0;
    if !meets(lo.max(1e-3)) {
        return 0.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::xeon_e5_2697_v4()
    }

    #[test]
    fn grid_indexing_is_consistent() {
        let g = LatencyGrid::sweep(&topo(), Service::Moses, 16, 2200.0);
        assert_eq!(g.p95_ms.len(), 36 * 20);
        // Corner cells exist and are positive.
        assert!(g.p95(AllocPoint::new(1, 1)) > 0.0);
        assert!(g.p95(AllocPoint::new(36, 20)) > 0.0);
        // More resources never hurt in the noiseless model.
        assert!(g.p95(AllocPoint::new(36, 20)) <= g.p95(AllocPoint::new(1, 1)));
    }

    #[test]
    fn moses_has_cliff_and_oaa() {
        let g = LatencyGrid::sweep(&topo(), Service::Moses, 16, 2200.0);
        let cliff = g.rcliff().expect("moses at 2200 rps is feasible");
        let oaa = g.oaa().expect("oaa exists");
        assert!(oaa.cores >= cliff.cores && oaa.ways >= cliff.ways);
        assert!(oaa.cores > cliff.cores || oaa.ways > cliff.ways, "oaa must sit off the cliff");
        assert!(g.meets_qos(oaa));
        // Fig. 1-a magnitudes: depriving one step from the frontier is
        // catastrophic.
        assert!(g.cliff_magnitude() > 50.0, "magnitude {}", g.cliff_magnitude());
    }

    #[test]
    fn mongodb_cliff_is_gentler_than_moses() {
        let t = topo();
        let moses = LatencyGrid::sweep(&t, Service::Moses, 16, 2200.0).cliff_magnitude();
        let mongo = LatencyGrid::sweep(&t, Service::MongoDb, 24, 5000.0).cliff_magnitude();
        assert!(mongo < moses, "mongodb ({mongo:.1}x) should cliff less than moses ({moses:.1}x)");
    }

    #[test]
    fn img_dnn_rcliff_needs_few_ways() {
        let g = LatencyGrid::sweep(&topo(), Service::ImgDnn, 36, 4000.0);
        let cliff = g.rcliff().expect("feasible");
        assert!(cliff.ways <= 3, "img-dnn is core-bound; cliff at {cliff:?}");
    }

    #[test]
    fn rcliff_shifts_outward_with_load() {
        let shifts = rcliff_shift(&topo(), Service::Moses);
        let feasible: Vec<_> = shifts.iter().filter_map(|(_, p)| *p).collect();
        assert!(feasible.len() >= 2, "several Table-1 loads must be feasible");
        let first = feasible.first().unwrap();
        let last = feasible.last().unwrap();
        assert!(
            last.total() >= first.total(),
            "higher load must not need fewer resources: {first:?} -> {last:?}"
        );
    }

    #[test]
    fn oaa_is_stable_across_thread_counts() {
        // Fig. 3: the OAA is insensitive to how many threads the operator
        // launches.
        let t = topo();
        let oaas: Vec<_> = [16usize, 20, 28, 36]
            .iter()
            .map(|&th| LatencyGrid::sweep(&t, Service::Moses, th, 2200.0).oaa().expect("feasible"))
            .collect();
        let min_cores = oaas.iter().map(|p| p.cores).min().unwrap();
        let max_cores = oaas.iter().map(|p| p.cores).max().unwrap();
        assert!(max_cores - min_cores <= 3, "OAA cores should barely move with threads: {oaas:?}");
    }

    #[test]
    fn infeasible_load_has_no_rcliff() {
        let g = LatencyGrid::sweep(&topo(), Service::Moses, 16, 1.0e9);
        assert_eq!(g.rcliff(), None);
        assert_eq!(g.oaa(), None);
        assert_eq!(g.oaa_bandwidth_gbps(), None);
    }

    #[test]
    fn max_load_is_near_table1_top() {
        let t = topo();
        for s in [Service::Moses, Service::Xapian, Service::ImgDnn] {
            let measured = max_load(&t, s);
            let nominal = s.params().nominal_max_rps();
            let ratio = measured / nominal;
            assert!(
                (0.5..=2.5).contains(&ratio),
                "{s}: measured max load {measured:.0} vs Table-1 {nominal:.0} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn oaa_bandwidth_is_positive_for_memory_bound_services() {
        let g = LatencyGrid::sweep(&topo(), Service::Moses, 16, 2600.0);
        if let Some(bw) = g.oaa_bandwidth_gbps() {
            assert!(bw > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn p95_rejects_out_of_grid() {
        let g = LatencyGrid::sweep(&topo(), Service::Login, 8, 300.0);
        let _ = g.p95(AllocPoint::new(37, 1));
    }
}

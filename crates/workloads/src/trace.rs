//! Performance-trace recording — the artifact the paper's nine-month data
//! collection produced ("we make all of the training data sets publicly
//! available").
//!
//! A [`TraceRecorder`] samples every service on a [`SimServer`] once per
//! tick and accumulates rows of the Table-3 counters plus latency; traces
//! export to CSV for offline analysis or external training pipelines.

use crate::{Service, SimServer};
use osml_platform::Substrate;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One recorded observation of one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Service observed.
    pub service: Service,
    /// Offered load, RPS.
    pub offered_rps: f64,
    /// The 11 Table-3 Model-A features, in
    /// [`osml_platform::CounterSample::feature_names`] order.
    pub features: [f64; 11],
    /// p95 latency, ms.
    pub p95_ms: f64,
    /// QoS target, ms.
    pub qos_ms: f64,
}

/// Accumulates per-tick traces of every service on a simulated server.
///
/// # Example
///
/// ```
/// use osml_platform::{Allocation, Substrate, Topology};
/// use osml_workloads::trace::TraceRecorder;
/// use osml_workloads::{LaunchSpec, Service, SimServer};
///
/// let mut server = SimServer::deterministic();
/// let topo = Topology::xeon_e5_2697_v4();
/// server.launch(LaunchSpec::at_percent_load(Service::Login, 30.0),
///               Allocation::whole_machine(&topo))?;
/// let mut recorder = TraceRecorder::new();
/// for _ in 0..5 {
///     server.advance(1.0);
///     recorder.record(&server);
/// }
/// assert_eq!(recorder.rows().len(), 5);
/// assert!(recorder.to_csv().lines().count() == 6); // header + 5 rows
/// # Ok::<(), osml_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceRecorder {
    rows: Vec<TraceRow>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Samples every placed service once.
    pub fn record(&mut self, server: &SimServer) {
        for id in server.apps() {
            let (Some(sample), Some(lat), Some(spec)) =
                (server.sample(id), server.latency(id), server.spec_of(id))
            else {
                continue;
            };
            self.rows.push(TraceRow {
                time_s: server.now(),
                service: spec.service,
                offered_rps: spec.offered_rps,
                features: sample.model_a_features(),
                p95_ms: lat.p95_ms,
                qos_ms: lat.qos_target_ms,
            });
        }
    }

    /// All recorded rows, in record order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Rows for one service.
    pub fn rows_for(&self, service: Service) -> impl Iterator<Item = &TraceRow> {
        self.rows.iter().filter(move |r| r.service == service)
    }

    /// Serializes the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "time_s,service,offered_rps");
        for name in osml_platform::CounterSample::feature_names() {
            let _ = write!(out, ",{}", name.to_lowercase().replace([' ', '.'], "_"));
        }
        let _ = writeln!(out, ",p95_ms,qos_ms");
        for r in &self.rows {
            let _ = write!(out, "{},{},{}", r.time_s, r.service, r.offered_rps);
            for f in r.features {
                let _ = write!(out, ",{f}");
            }
            let _ = writeln!(out, ",{},{}", r.p95_ms, r.qos_ms);
        }
        out
    }

    /// Writes the CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaunchSpec;
    use osml_platform::{Allocation, Topology};

    fn recorded() -> TraceRecorder {
        let mut server = SimServer::deterministic();
        let topo = Topology::xeon_e5_2697_v4();
        server
            .launch(
                LaunchSpec::at_percent_load(Service::Moses, 40.0),
                Allocation::whole_machine(&topo),
            )
            .unwrap();
        let mut rec = TraceRecorder::new();
        for _ in 0..4 {
            server.advance(1.0);
            rec.record(&server);
        }
        rec
    }

    #[test]
    fn records_one_row_per_service_per_tick() {
        let rec = recorded();
        assert_eq!(rec.rows().len(), 4);
        assert!(rec.rows_for(Service::Moses).count() == 4);
        assert!(rec.rows_for(Service::Xapian).count() == 0);
        let r = &rec.rows()[0];
        assert!(r.p95_ms > 0.0);
        assert_eq!(r.features.len(), 11);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rec = recorded();
        let csv = rec.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_s,service,offered_rps,ipc,"));
        assert_eq!(lines.count(), 4);
        // Every data line has the same number of commas as the header.
        let commas = header.matches(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.matches(',').count(), commas, "{line}");
        }
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let rec = recorded();
        let path = std::env::temp_dir().join(format!("osml-trace-{}.csv", std::process::id()));
        rec.save_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, rec.to_csv());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn trace_serializes_as_json_too() {
        let rec = recorded();
        let json = serde_json::to_string(&rec).unwrap();
        let back: TraceRecorder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows().len(), rec.rows().len());
    }
}

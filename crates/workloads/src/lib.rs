//! Analytic models of latency-critical microservices and the co-location
//! simulator used as OSML's machine substrate.
//!
//! The paper evaluates OSML on eleven real services (Table 1: Tailbench
//! workloads plus Memcached, MongoDB, Nginx, Specjbb and two proprietary
//! services). Real binaries and load generators are a hardware/data gate for
//! this reproduction, so this crate substitutes **queueing-theoretic analytic
//! models** calibrated to the paper's published numbers. The substitution is
//! behaviour-preserving for the phenomena OSML's models must learn:
//!
//! * **Resource Cliff (RCliff, §III-A)** — per-request service time grows as
//!   LLC ways are removed (miss-ratio curve), and capacity grows with cores;
//!   at fixed offered load, the utilization `ρ = load / capacity` crosses 1
//!   along a frontier in the (cores, ways) plane. Below the frontier the
//!   queue diverges and tail latency jumps by 100×+ within a single core or
//!   way — exactly the cliff of Fig. 1.
//! * **RPS sensitivity (Fig. 2)** — raising offered load moves the `ρ = 1`
//!   frontier outward, shifting the cliff.
//! * **Thread-count insensitivity of the OAA (Fig. 3)** — extra threads add
//!   context-switch overhead (raising latency uniformly) but do not move the
//!   capacity frontier, so the optimal allocation area stays put.
//! * **Cross-service coupling** — co-runners share memory bandwidth (misses
//!   drive DRAM traffic; saturation stalls everyone), LLC ways (overlapping
//!   CAT masks split capacity), and cores (overlapping affinity masks split
//!   cycles), reproducing the contention PARTIES and OSML fight over.
//!
//! The crate provides:
//!
//! * [`Service`] / [`ServiceParams`] — the twelve modelled services and their
//!   calibrated parameters,
//! * [`perf::evaluate`] — the closed-form performance model,
//! * [`SimServer`] — a [`osml_platform::Substrate`] implementation that
//!   co-locates services, resolves bandwidth/cache/core contention to a fixed
//!   point each tick, and synthesizes Table-3 counter samples,
//! * [`oaa`] — ground-truth latency grids, RCliff and OAA extraction
//!   (the paper's Fig. 1 red line and green area),
//! * [`loadgen`] — deterministic load schedules for the dynamic experiments
//!   (Fig. 4, Fig. 14),
//! * [`trace`] — per-tick performance-trace recording with CSV export (the
//!   artifact of the paper's data-collection campaign).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod oaa;
mod params;
pub mod perf;
mod sim;
pub mod trace;

pub use params::{Service, ServiceParams, ALL_SERVICES};
pub use perf::{PerfInput, PerfOutcome};
pub use sim::{LaunchSpec, SimConfig, SimServer};

use osml_platform::{Allocation, AppId, Placement, RejectReason, Scheduler, Substrate};
use osml_telemetry::{ActionKind, AllocSnapshot, Provenance, Telemetry, TraceRecord};

/// The paper's **Unmanaged Allocation** baseline: every service's threads
/// may run on every core, the LLC and memory bandwidth are uncontrolled,
/// and the OS time-shares everything. QoS is whatever falls out.
#[derive(Debug, Clone, Default)]
pub struct Unmanaged {
    actions: usize,
    telemetry: Telemetry,
}

impl Unmanaged {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        Unmanaged::default()
    }

    /// Attaches an observability pipeline (write-only; decisions are
    /// unaffected).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl Scheduler for Unmanaged {
    fn name(&self) -> &'static str {
        "unmanaged"
    }

    fn on_arrival<S: Substrate>(&mut self, server: &mut S, id: AppId) -> Placement {
        let alloc = Allocation::whole_machine(server.topology());
        if server.reallocate(id, alloc).is_ok() {
            self.actions += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.trace(TraceRecord {
                    tick: 0,
                    time_s: server.now(),
                    app: Some(id.0),
                    kind: ActionKind::Place,
                    provenance: Provenance::Baseline,
                    pre: None,
                    post: Some(AllocSnapshot {
                        cores: alloc.cores.count(),
                        ways: alloc.ways.count(),
                    }),
                    counts_as_action: true,
                    detail: None,
                });
            }
            Placement::Placed
        } else {
            Placement::Rejected(RejectReason::InsufficientResources)
        }
    }

    fn tick<S: Substrate>(&mut self, _server: &mut S) {
        // The OS scheduler "manages" everything; this policy never acts.
    }

    fn on_departure(&mut self, _id: AppId) {}

    fn action_count(&self) -> usize {
        self.actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::{CoreSet, MbaThrottle, WayMask};
    use osml_workloads::{LaunchSpec, Service, SimServer};

    #[test]
    fn unmanaged_gives_everyone_the_whole_machine() {
        let mut server = SimServer::deterministic();
        let mut sched = Unmanaged::new();
        let seed_alloc =
            Allocation::new(CoreSet::first_n(2), WayMask::first_n(2), MbaThrottle::unthrottled());
        let a = server.launch(LaunchSpec::new(Service::Moses, 1500.0), seed_alloc).unwrap();
        let b = server.launch(LaunchSpec::new(Service::Xapian, 2000.0), seed_alloc).unwrap();
        assert_eq!(sched.on_arrival(&mut server, a), Placement::Placed);
        assert_eq!(sched.on_arrival(&mut server, b), Placement::Placed);
        server.advance(2.0);
        sched.tick(&mut server);
        for id in [a, b] {
            let alloc = server.allocation(id).unwrap();
            assert_eq!(alloc.cores.count(), 36);
            assert_eq!(alloc.ways.count(), 20);
        }
        assert_eq!(sched.action_count(), 2);
    }

    #[test]
    fn unmanaged_co_runners_interfere() {
        // Two heavy services sharing everything must hurt each other more
        // than a clean half-half partition would.
        let mut shared = SimServer::deterministic();
        let mut sched = Unmanaged::new();
        let seed =
            Allocation::new(CoreSet::first_n(1), WayMask::first_n(1), MbaThrottle::unthrottled());
        let a = shared.launch(LaunchSpec::at_percent_load(Service::Moses, 60.0), seed).unwrap();
        let b = shared.launch(LaunchSpec::at_percent_load(Service::Specjbb, 60.0), seed).unwrap();
        sched.on_arrival(&mut shared, a);
        sched.on_arrival(&mut shared, b);
        shared.advance(2.0);
        let shared_p95 = shared.latency(a).unwrap().p95_ms;

        let mut split = SimServer::deterministic();
        let a2 = split
            .launch(
                LaunchSpec::at_percent_load(Service::Moses, 60.0),
                Allocation::new(
                    CoreSet::first_n(18),
                    WayMask::first_n(10),
                    MbaThrottle::unthrottled(),
                ),
            )
            .unwrap();
        let _b2 = split
            .launch(
                LaunchSpec::at_percent_load(Service::Specjbb, 60.0),
                Allocation::new(
                    CoreSet::from_cores(18..36),
                    WayMask::contiguous(10, 10).unwrap(),
                    MbaThrottle::unthrottled(),
                ),
            )
            .unwrap();
        split.advance(2.0);
        let split_p95 = split.latency(a2).unwrap().p95_ms;
        assert!(
            shared_p95 > split_p95,
            "unmanaged sharing should be worse: {shared_p95:.2} vs {split_p95:.2}"
        );
    }
}

use osml_platform::{Allocation, CoreSet, MbaThrottle, Substrate, Topology, WayMask};
use osml_telemetry::Telemetry;
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::{LaunchSpec, SimConfig, SimServer};

/// A static partition: one `(cores, ways)` per service, in launch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Resource counts per service.
    pub shares: Vec<(usize, usize)>,
}

impl PartitionPlan {
    /// Total cores committed.
    pub fn total_cores(&self) -> usize {
        self.shares.iter().map(|&(c, _)| c).sum()
    }

    /// Total ways committed.
    pub fn total_ways(&self) -> usize {
        self.shares.iter().map(|&(_, w)| w).sum()
    }
}

/// The paper's **Oracle**: exhaustive offline search for the best static
/// disjoint partition — "the ceiling that the schedulers try to achieve"
/// (§VI-A).
///
/// Candidate shares per service come from its solo QoS frontier (plus
/// one-way safety variants, since co-location adds bandwidth contention the
/// solo frontier does not see); every combination that fits the machine is
/// *actually evaluated* on the contention-aware simulator until one meets
/// every service's QoS.
#[derive(Debug, Clone)]
pub struct Oracle {
    topo: Topology,
    /// Cap on full-simulation evaluations per query (a safety valve; the
    /// capacity pruning keeps real queries far below it).
    pub max_evaluations: usize,
    telemetry: Telemetry,
}

impl Oracle {
    /// Creates an oracle for the paper's testbed.
    pub fn new() -> Self {
        Oracle {
            topo: Topology::xeon_e5_2697_v4(),
            max_evaluations: 20_000,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability pipeline: the offline search records its
    /// per-plan evaluation timings and counts through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Candidate `(cores, ways)` shares for one service at one load: the
    /// Pareto frontier of its solo grid, each with a `ways + 1` variant.
    fn candidates(&self, spec: &LaunchSpec) -> Vec<(usize, usize)> {
        let grid = LatencyGrid::sweep(&self.topo, spec.service, spec.threads, spec.offered_rps);
        let frontier = grid.rcliff_frontier();
        let mut out = Vec::new();
        let mut best_ways = usize::MAX;
        for (idx, ways) in frontier.iter().enumerate() {
            let cores = idx + 1;
            let Some(w) = ways else { continue };
            // Pareto: only keep core counts that reduce the way requirement
            // (plus the very first feasible core count).
            if *w < best_ways {
                best_ways = *w;
                out.push((cores, *w));
                if *w < self.topo.llc_ways() {
                    out.push((cores, *w + 1));
                }
                if *w + 2 <= self.topo.llc_ways() {
                    out.push((cores, *w + 2));
                }
                // Core-padded variants: the frontier assumes full-yield
                // (spread) cores, but a packed multi-service plan lands some
                // services on hyper-thread siblings at reduced yield; extra
                // logical cores compensate.
                for pad in [2usize, 4, 6] {
                    if cores + pad <= self.topo.logical_cores() {
                        out.push((cores + pad, *w));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        // Cheapest-total first, so the first feasible combo found is also a
        // resource-light one.
        out.sort_by_key(|&(c, w)| c + w);
        out
    }

    /// Evaluates a partition on the contention-aware simulator, returning
    /// each service's QoS slack (negative = violating), or `None` if the
    /// plan does not fit the machine at all.
    fn plan_slacks(&self, specs: &[LaunchSpec], plan: &PartitionPlan) -> Option<Vec<f64>> {
        self.telemetry.counter_add("oracle.evaluations", 1);
        let _span = self.telemetry.span("oracle.evaluate_us");
        if plan.total_cores() > self.topo.logical_cores()
            || plan.total_ways() > self.topo.llc_ways()
            || plan.shares.iter().any(|&(c, w)| c == 0 || w == 0)
        {
            return None;
        }
        let mut server =
            SimServer::new(SimConfig { topology: self.topo.clone(), noise_sigma: 0.0, seed: 0 });
        let mut next_core = 0usize;
        let mut next_way = 0usize;
        let mut ids = Vec::new();
        for (spec, &(cores, ways)) in specs.iter().zip(&plan.shares) {
            let all = CoreSet::all(&self.topo);
            let pool: CoreSet = all.iter().skip(next_core).collect();
            let core_set = pool.pick_spread(&self.topo, cores)?;
            let mask = WayMask::contiguous(next_way, ways).ok()?;
            next_core += cores;
            next_way += ways;
            let alloc = Allocation::new(core_set, mask, MbaThrottle::unthrottled());
            ids.push(server.launch(*spec, alloc).ok()?);
        }
        server.advance(2.0);
        ids.iter().map(|&id| server.latency(id).map(|l| l.qos_slack())).collect()
    }

    /// Iterative refinement: starting from a seed partition, greedily move
    /// single cores/ways from the most-slack service to the most-violating
    /// one, accepting moves that raise the minimum slack. This finds the
    /// tight, high-utilization packings (ρ close to 1) that the frontier
    /// lattice of [`Oracle::candidates`] quantizes away.
    fn hill_climb(&self, specs: &[LaunchSpec], seed: PartitionPlan) -> Option<PartitionPlan> {
        let mut plan = seed;
        let mut slacks = self.plan_slacks(specs, &plan)?;
        for _ in 0..400 {
            if slacks.iter().all(|&s| s >= 0.0) {
                return Some(plan);
            }
            let worst = (0..slacks.len())
                .min_by(|&a, &b| slacks[a].total_cmp(&slacks[b]))
                .expect("nonempty");
            // Candidate moves: one core or one way from any other service
            // (or from the idle pool) to the worst one.
            let mut best_move: Option<(PartitionPlan, Vec<f64>, f64)> = None;
            let idle_cores = self.topo.logical_cores() - plan.total_cores();
            let idle_ways = self.topo.llc_ways() - plan.total_ways();
            let mut candidates: Vec<PartitionPlan> = Vec::new();
            if idle_cores > 0 {
                let mut p = plan.clone();
                p.shares[worst].0 += 1;
                candidates.push(p);
            }
            if idle_ways > 0 {
                let mut p = plan.clone();
                p.shares[worst].1 += 1;
                candidates.push(p);
            }
            for (donor, &slack) in slacks.iter().enumerate() {
                if donor == worst || slack <= 0.0 {
                    continue;
                }
                if plan.shares[donor].0 > 1 {
                    let mut p = plan.clone();
                    p.shares[donor].0 -= 1;
                    p.shares[worst].0 += 1;
                    candidates.push(p);
                }
                if plan.shares[donor].1 > 1 {
                    let mut p = plan.clone();
                    p.shares[donor].1 -= 1;
                    p.shares[worst].1 += 1;
                    candidates.push(p);
                }
            }
            let current_min = slacks.iter().copied().fold(f64::INFINITY, f64::min);
            for cand in candidates {
                if let Some(s) = self.plan_slacks(specs, &cand) {
                    let m = s.iter().copied().fold(f64::INFINITY, f64::min);
                    if m > current_min && best_move.as_ref().is_none_or(|&(_, _, bm)| m > bm) {
                        best_move = Some((cand, s, m));
                    }
                }
            }
            match best_move {
                Some((p, s, _)) => {
                    plan = p;
                    slacks = s;
                }
                None => return None, // local optimum, still violating
            }
        }
        None
    }

    /// Evaluates a concrete partition on the contention-aware simulator.
    fn plan_meets_qos(&self, specs: &[LaunchSpec], plan: &PartitionPlan) -> bool {
        self.telemetry.counter_add("oracle.evaluations", 1);
        let _span = self.telemetry.span("oracle.evaluate_us");
        let mut server =
            SimServer::new(SimConfig { topology: self.topo.clone(), noise_sigma: 0.0, seed: 0 });
        let mut next_core = 0usize;
        let mut next_way = 0usize;
        let mut ids = Vec::new();
        for (spec, &(cores, ways)) in specs.iter().zip(&plan.shares) {
            let all = CoreSet::all(&self.topo);
            let pool: CoreSet = all.iter().skip(next_core).collect();
            let Some(core_set) = pool.pick_spread(&self.topo, cores) else { return false };
            let Ok(mask) = WayMask::contiguous(next_way, ways) else { return false };
            next_core += cores;
            next_way += ways;
            let alloc = Allocation::new(core_set, mask, MbaThrottle::unthrottled());
            match server.launch(*spec, alloc) {
                Ok(id) => ids.push(id),
                Err(_) => return false,
            }
        }
        server.advance(2.0);
        ids.iter().all(|&id| server.latency(id).map(|l| !l.violates_qos()).unwrap_or(false))
    }

    /// Finds a QoS-feasible static partition for the given co-location, or
    /// `None` if the exhaustive search proves (up to the evaluation cap)
    /// that none exists.
    pub fn best_partition(&self, specs: &[LaunchSpec]) -> Option<PartitionPlan> {
        let _span = self.telemetry.span("oracle.search_us");
        if specs.is_empty() {
            return Some(PartitionPlan { shares: Vec::new() });
        }
        let candidates: Vec<Vec<(usize, usize)>> =
            specs.iter().map(|s| self.candidates(s)).collect();
        if candidates.iter().any(|c| c.is_empty()) {
            return None; // some service is infeasible even alone
        }
        // Minimal remaining totals for pruning.
        let min_cores: Vec<usize> =
            candidates.iter().map(|c| c.iter().map(|&(x, _)| x).min().unwrap_or(0)).collect();
        let min_ways: Vec<usize> =
            candidates.iter().map(|c| c.iter().map(|&(_, x)| x).min().unwrap_or(0)).collect();
        let suffix = |v: &[usize], i: usize| -> usize { v[i..].iter().sum() };

        let mut evals = 0usize;
        let mut shares: Vec<(usize, usize)> = Vec::with_capacity(specs.len());
        if let Some(plan) = self.search(
            specs,
            &candidates,
            &min_cores,
            &min_ways,
            &suffix,
            0,
            0,
            0,
            &mut shares,
            &mut evals,
        ) {
            return Some(plan);
        }
        // The lattice missed; refine from proportional seeds toward a tight
        // packing.
        let n = specs.len();
        let equal = PartitionPlan {
            shares: (0..n)
                .map(|i| {
                    let c = (self.topo.logical_cores() / n).max(1)
                        + usize::from(i < self.topo.logical_cores() % n);
                    let w = (self.topo.llc_ways() / n).max(1)
                        + usize::from(i < self.topo.llc_ways() % n);
                    (c, w)
                })
                .collect(),
        };
        if let Some(plan) = self.hill_climb(specs, equal) {
            return Some(plan);
        }
        // A work-proportional seed sometimes escapes the equal split's
        // local optimum.
        let weights: Vec<f64> = specs
            .iter()
            .map(|s| (s.offered_rps / s.service.params().nominal_max_rps()).max(0.05))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let proportional = PartitionPlan {
            shares: weights
                .iter()
                .map(|w| {
                    let c = ((self.topo.logical_cores() as f64) * w / wsum).floor() as usize;
                    let wy = ((self.topo.llc_ways() as f64) * w / wsum).floor() as usize;
                    (c.max(1), wy.max(1))
                })
                .collect(),
        };
        self.hill_climb(specs, proportional)
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        specs: &[LaunchSpec],
        candidates: &[Vec<(usize, usize)>],
        min_cores: &[usize],
        min_ways: &[usize],
        suffix: &dyn Fn(&[usize], usize) -> usize,
        depth: usize,
        used_cores: usize,
        used_ways: usize,
        shares: &mut Vec<(usize, usize)>,
        evals: &mut usize,
    ) -> Option<PartitionPlan> {
        if depth == specs.len() {
            *evals += 1;
            if *evals > self.max_evaluations {
                return None;
            }
            let plan = PartitionPlan { shares: shares.clone() };
            return self.plan_meets_qos(specs, &plan).then_some(plan);
        }
        let cores_budget = self.topo.logical_cores() - used_cores;
        let ways_budget = self.topo.llc_ways() - used_ways;
        for &(c, w) in &candidates[depth] {
            if *evals > self.max_evaluations {
                return None;
            }
            // Capacity pruning: this choice plus the minimum possible needs
            // of the remaining services must fit.
            if c + suffix(min_cores, depth + 1) > cores_budget
                || w + suffix(min_ways, depth + 1) > ways_budget
            {
                continue;
            }
            shares.push((c, w));
            if let Some(plan) = self.search(
                specs,
                candidates,
                min_cores,
                min_ways,
                suffix,
                depth + 1,
                used_cores + c,
                used_ways + w,
                shares,
                evals,
            ) {
                return Some(plan);
            }
            shares.pop();
        }
        None
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

/// Finds a feasible partition for a co-location (convenience wrapper).
pub fn best_partition(specs: &[LaunchSpec]) -> Option<PartitionPlan> {
    Oracle::new().best_partition(specs)
}

/// The highest load fraction (in percent, stepped by `step_pct`) of
/// `variable` that can be co-located with `fixed` under everyone's QoS —
/// one cell of the paper's Fig. 10–12 heatmaps, for the Oracle policy.
/// Returns 0 if even the lowest step is infeasible.
pub fn max_supported_fraction(
    fixed: &[LaunchSpec],
    variable: osml_workloads::Service,
    step_pct: usize,
) -> usize {
    let oracle = Oracle::new();
    let mut pct = 100;
    while pct >= step_pct {
        let mut specs = fixed.to_vec();
        specs.push(LaunchSpec::at_percent_load(variable, pct as f64));
        if oracle.best_partition(&specs).is_some() {
            return pct;
        }
        pct -= step_pct;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_workloads::Service;

    #[test]
    fn single_light_service_is_feasible() {
        let specs = [LaunchSpec::at_percent_load(Service::Login, 50.0)];
        let plan = best_partition(&specs).expect("login at 50% fits easily");
        assert_eq!(plan.shares.len(), 1);
        assert!(plan.total_cores() <= 36);
        assert!(plan.total_ways() <= 20);
    }

    #[test]
    fn impossible_load_is_infeasible() {
        let specs = [LaunchSpec::new(Service::Moses, 1.0e9)];
        assert!(best_partition(&specs).is_none());
    }

    #[test]
    fn three_moderate_services_fit() {
        // The Fig. 10 midpoint: three services at 40 % each. A tight
        // packing (hill-climbed to ρ ≈ 1) fits the machine.
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 40.0),
            LaunchSpec::at_percent_load(Service::ImgDnn, 40.0),
            LaunchSpec::at_percent_load(Service::Xapian, 40.0),
        ];
        let plan = best_partition(&specs).expect("the Fig. 10 midpoint is feasible");
        assert_eq!(plan.shares.len(), 3);
        assert!(plan.total_cores() <= 36, "{plan:?}");
        assert!(plan.total_ways() <= 20, "{plan:?}");

        // The same trio at 80 % each (~240 % aggregate) cannot fit.
        let over = [
            LaunchSpec::at_percent_load(Service::Moses, 80.0),
            LaunchSpec::at_percent_load(Service::ImgDnn, 80.0),
            LaunchSpec::at_percent_load(Service::Xapian, 80.0),
        ];
        assert!(best_partition(&over).is_none());
    }

    #[test]
    fn overcommitted_machine_is_infeasible() {
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 100.0),
            LaunchSpec::at_percent_load(Service::Xapian, 100.0),
            LaunchSpec::at_percent_load(Service::Specjbb, 100.0),
            LaunchSpec::at_percent_load(Service::Masstree, 100.0),
        ];
        assert!(best_partition(&specs).is_none(), "four services at max load cannot fit");
    }

    #[test]
    fn max_supported_fraction_is_monotone_in_background_load() {
        let light = [LaunchSpec::at_percent_load(Service::ImgDnn, 20.0)];
        let heavy = [LaunchSpec::at_percent_load(Service::ImgDnn, 80.0)];
        let with_light = max_supported_fraction(&light, Service::Moses, 10);
        let with_heavy = max_supported_fraction(&heavy, Service::Moses, 10);
        assert!(
            with_light >= with_heavy,
            "more background load cannot help: {with_light} vs {with_heavy}"
        );
        assert!(with_light > 0);
    }
}

//! The comparison schedulers of the paper's evaluation (§VI-B).
//!
//! * [`Parties`] — a re-implementation of PARTIES (Chen et al., ASPLOS '19)
//!   from its published description, as the paper itself did ("we implement
//!   it in our work, as it is not open-source"): a per-service finite state
//!   machine making incremental, one-dimension-at-a-time adjustments until
//!   QoS is satisfied for all services, with trial-and-error reverts.
//! * [`Unmanaged`] — the paper's baseline: threads mapped across all cores,
//!   no CAT/MBA control; the OS time-shares everything.
//! * [`Oracle`] — exhaustive offline search for the best static partition,
//!   "the ceiling that the schedulers try to achieve".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod oracle;
mod parties;
mod unmanaged;

pub use oracle::{best_partition, max_supported_fraction, Oracle, PartitionPlan};
pub use parties::{Parties, PartiesConfig};
pub use unmanaged::Unmanaged;

use osml_platform::{
    Allocation, AppId, CoreSet, MbaThrottle, Placement, RejectReason, Scheduler, Substrate, WayMask,
};
use osml_telemetry::{ActionKind, AllocSnapshot, Provenance, Telemetry, TraceRecord};
use std::collections::BTreeMap;

/// Tunables of the PARTIES re-implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartiesConfig {
    /// QoS slack above which a service is downsized to free resources
    /// (PARTIES uses generous upsize/downsize thresholds around its
    /// monitoring interval).
    pub downsize_slack: f64,
    /// Slack below which (but still positive) the service is left alone.
    pub comfort_slack: f64,
}

impl Default for PartiesConfig {
    fn default() -> Self {
        PartiesConfig { downsize_slack: 0.40, comfort_slack: 0.05 }
    }
}

/// Which resource dimension an adjustment touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    Cores,
    Ways,
}

impl Dim {
    fn other(self) -> Dim {
        match self {
            Dim::Cores => Dim::Ways,
            Dim::Ways => Dim::Cores,
        }
    }
}

/// A pending trial-and-error adjustment awaiting its next sample.
#[derive(Debug, Clone, Copy)]
struct Trial {
    dim: Dim,
    upsize: bool,
    p95_before: f64,
}

#[derive(Debug, Clone)]
struct AppFsm {
    next_dim: Dim,
    trial: Option<Trial>,
}

/// A re-implementation of **PARTIES** (Chen et al., ASPLOS '19), the
/// state-of-the-art comparison point of the paper's evaluation.
///
/// PARTIES monitors each service's tail latency and makes *incremental,
/// one-dimension-at-a-time* adjustments:
///
/// * a service violating QoS is **upsized** by one core or one LLC way —
///   taken from the idle pool, or stolen from the co-runner with the most
///   slack;
/// * a service with ample slack is **downsized** by one unit to free
///   resources;
/// * each adjustment is a *trial*: if the next sample shows it did not help
///   (upsize) or broke QoS (downsize), it is reverted and the other
///   dimension is tried — the FSM the OSML paper describes (§VI-B).
///
/// Because PARTIES has no notion of RCliff or OAA, a downsize can step off
/// the cliff, producing the latency spikes of Fig. 4/16; recovery then
/// takes many single-unit upsizes.
#[derive(Debug, Clone)]
pub struct Parties {
    config: PartiesConfig,
    fsms: BTreeMap<AppId, AppFsm>,
    actions: usize,
    ticks: u64,
    telemetry: Telemetry,
}

impl Parties {
    /// Creates a PARTIES scheduler with default thresholds.
    pub fn new() -> Self {
        Parties::with_config(PartiesConfig::default())
    }

    /// Creates a PARTIES scheduler with custom thresholds.
    pub fn with_config(config: PartiesConfig) -> Self {
        Parties {
            config,
            fsms: BTreeMap::new(),
            actions: 0,
            ticks: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability pipeline (write-only; decisions are
    /// unaffected).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Emits one baseline decision-trace record (no-op when disabled).
    fn emit_trace(
        &self,
        now: f64,
        app: AppId,
        kind: ActionKind,
        pre: Option<Allocation>,
        post: Option<Allocation>,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let snap = |a: Allocation| AllocSnapshot { cores: a.cores.count(), ways: a.ways.count() };
        self.telemetry.trace(TraceRecord {
            tick: self.ticks,
            time_s: now,
            app: Some(app.0),
            kind,
            provenance: Provenance::Baseline,
            pre: pre.map(snap),
            post: post.map(snap),
            counts_as_action: true,
            detail: None,
        });
    }

    /// Splits all cores and ways evenly among the current services —
    /// PARTIES' starting partition after an arrival.
    fn equal_partition<S: Substrate>(&mut self, server: &mut S) {
        let apps = server.apps();
        if apps.is_empty() {
            return;
        }
        let topo = server.topology().clone();
        let n = apps.len();
        let cores_each = (topo.logical_cores() / n).max(1);
        let ways_each = (topo.llc_ways() / n).max(1);
        let mut counts: BTreeMap<AppId, (usize, usize)> = BTreeMap::new();
        let mut spare_cores = topo.logical_cores() - cores_each * n.min(topo.logical_cores());
        let mut spare_ways = topo.llc_ways().saturating_sub(ways_each * n);
        for &id in &apps {
            let extra_c = usize::from(spare_cores > 0);
            let extra_w = usize::from(spare_ways > 0);
            spare_cores = spare_cores.saturating_sub(1);
            spare_ways = spare_ways.saturating_sub(1);
            counts.insert(id, (cores_each + extra_c, ways_each + extra_w));
        }
        self.install_partition(server, &counts);
    }

    /// Programs disjoint contiguous masks/core sets for the given counts.
    fn install_partition<S: Substrate>(
        &mut self,
        server: &mut S,
        counts: &BTreeMap<AppId, (usize, usize)>,
    ) {
        let topo = server.topology().clone();
        let mut next_core = 0usize;
        let mut next_way = 0usize;
        for (&id, &(cores, ways)) in counts {
            let cores = cores.min(topo.logical_cores().saturating_sub(next_core)).max(1);
            let ways = ways.min(topo.llc_ways().saturating_sub(next_way)).max(1);
            let core_set = CoreSet::from_cores(next_core..next_core + cores);
            let mask = WayMask::contiguous(next_way.min(topo.llc_ways() - ways), ways)
                .expect("partition fits");
            next_core += cores;
            next_way += ways;
            let alloc = Allocation::new(core_set, mask, MbaThrottle::unthrottled());
            let _ = server.reallocate(id, alloc);
        }
    }

    /// Current `(cores, ways)` counts of every service.
    fn current_counts<S: Substrate>(&self, server: &S) -> BTreeMap<AppId, (usize, usize)> {
        server
            .apps()
            .into_iter()
            .filter_map(|id| server.allocation(id).map(|a| (id, (a.cores.count(), a.ways.count()))))
            .collect()
    }

    /// Applies one `±1` adjustment to `id` on `dim`, stealing from `donor`
    /// if the idle pool is empty. Returns false if no unit was available.
    fn adjust<S: Substrate>(
        &mut self,
        server: &mut S,
        id: AppId,
        dim: Dim,
        upsize: bool,
        donor: Option<AppId>,
    ) -> bool {
        let mut counts = self.current_counts(server);
        let topo = server.topology().clone();
        let total_cores = topo.logical_cores();
        let total_ways = topo.llc_ways();
        let used_cores: usize = counts.values().map(|&(c, _)| c).sum();
        let used_ways: usize = counts.values().map(|&(_, w)| w).sum();
        {
            let Some(entry) = counts.get_mut(&id) else { return false };
            match (dim, upsize) {
                (Dim::Cores, false) if entry.0 > 1 => entry.0 -= 1,
                (Dim::Ways, false) if entry.1 > 1 => entry.1 -= 1,
                (Dim::Cores, true) => entry.0 += 1,
                (Dim::Ways, true) => entry.1 += 1,
                _ => return false,
            }
        }
        if upsize {
            let over_cores = dim == Dim::Cores && used_cores >= total_cores;
            let over_ways = dim == Dim::Ways && used_ways >= total_ways;
            if over_cores || over_ways {
                // Steal one unit from the donor.
                let Some(donor) = donor.filter(|d| *d != id) else { return false };
                let Some(d) = counts.get_mut(&donor) else { return false };
                match dim {
                    Dim::Cores if d.0 > 1 => d.0 -= 1,
                    Dim::Ways if d.1 > 1 => d.1 -= 1,
                    _ => return false,
                }
            }
        }
        let pre = server.allocation(id);
        self.install_partition(server, &counts);
        self.actions += 1;
        self.emit_trace(
            server.now(),
            id,
            if upsize { ActionKind::Grant } else { ActionKind::Reclaim },
            pre,
            server.allocation(id),
        );
        true
    }

    /// The co-runner with the most QoS slack (the victim PARTIES steals
    /// from).
    fn max_slack_app<S: Substrate>(&self, server: &S, except: AppId) -> Option<AppId> {
        server
            .apps()
            .into_iter()
            .filter(|&id| id != except)
            .filter_map(|id| server.latency(id).map(|l| (id, l.qos_slack())))
            .filter(|&(_, slack)| slack > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }
}

impl Default for Parties {
    fn default() -> Self {
        Parties::new()
    }
}

impl Scheduler for Parties {
    fn name(&self) -> &'static str {
        "parties"
    }

    fn on_arrival<S: Substrate>(&mut self, server: &mut S, id: AppId) -> Placement {
        // PARTIES equal-partitions the machine, so it can host at most as
        // many services as the scarcer resource has units. Past that the
        // partition would hand out empty allocations; reject instead so the
        // overload comparison against OSML is an honest one (the cap never
        // binds in the paper's co-location mixes of ≤ 6 services).
        let topo = server.topology();
        let capacity = topo.logical_cores().min(topo.llc_ways());
        if server.apps().len() > capacity {
            self.fsms.remove(&id);
            return Placement::Rejected(RejectReason::InsufficientResources);
        }
        self.fsms.insert(id, AppFsm { next_dim: Dim::Ways, trial: None });
        let pre = server.allocation(id);
        self.equal_partition(server);
        self.actions += 1;
        self.emit_trace(server.now(), id, ActionKind::Place, pre, server.allocation(id));
        Placement::Placed
    }

    fn tick<S: Substrate>(&mut self, server: &mut S) {
        self.ticks += 1;
        self.telemetry.counter_add("scheduler.ticks", 1);
        let ids = server.apps();
        for id in ids {
            let Some(lat) = server.latency(id) else { continue };
            let Some(fsm) = self.fsms.get(&id).cloned() else { continue };
            let slack = lat.qos_slack();

            // Settle a pending trial first.
            if let Some(trial) = fsm.trial {
                let improved = lat.p95_ms < trial.p95_before * 0.95;
                let mut fsm = fsm.clone();
                fsm.trial = None;
                if trial.upsize && !improved && slack < self.config.comfort_slack {
                    // The unit didn't help: give it back and try the other
                    // dimension next.
                    self.adjust(server, id, trial.dim, false, None);
                    fsm.next_dim = trial.dim.other();
                } else if !trial.upsize && slack < self.config.comfort_slack {
                    // Downsizing broke QoS: revert.
                    self.adjust(server, id, trial.dim, true, None);
                    fsm.next_dim = trial.dim.other();
                }
                self.fsms.insert(id, fsm);
                continue;
            }

            if slack < self.config.comfort_slack {
                // UPSIZE state: act before the strict boundary so noise
                // around the target does not whipsaw the FSM.
                let dim = fsm.next_dim;
                let donor = self.max_slack_app(server, id);
                if self.adjust(server, id, dim, true, donor) {
                    self.fsms.insert(
                        id,
                        AppFsm {
                            next_dim: dim,
                            trial: Some(Trial { dim, upsize: true, p95_before: lat.p95_ms }),
                        },
                    );
                } else {
                    // Nothing to take on this dimension; rotate.
                    self.fsms.insert(id, AppFsm { next_dim: dim.other(), trial: None });
                }
            } else if slack > self.config.downsize_slack {
                // DOWNSIZE state.
                let dim = fsm.next_dim;
                if self.adjust(server, id, dim, false, None) {
                    self.fsms.insert(
                        id,
                        AppFsm {
                            next_dim: dim.other(),
                            trial: Some(Trial { dim, upsize: false, p95_before: lat.p95_ms }),
                        },
                    );
                }
            }
            // Otherwise: SATISFIED, do nothing.
        }
    }

    fn on_departure(&mut self, id: AppId) {
        self.fsms.remove(&id);
    }

    fn action_count(&self) -> usize {
        self.actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_workloads::{LaunchSpec, Service, SimServer};

    fn seed_alloc() -> Allocation {
        Allocation::new(CoreSet::first_n(2), WayMask::first_n(2), MbaThrottle::unthrottled())
    }

    fn run(server: &mut SimServer, sched: &mut Parties, seconds: usize) {
        for _ in 0..seconds {
            server.advance(1.0);
            sched.tick(server);
        }
    }

    #[test]
    fn arrival_installs_an_equal_partition() {
        let mut server = SimServer::deterministic();
        let mut p = Parties::new();
        let a =
            server.launch(LaunchSpec::at_percent_load(Service::Moses, 40.0), seed_alloc()).unwrap();
        p.on_arrival(&mut server, a);
        let b = server
            .launch(LaunchSpec::at_percent_load(Service::Xapian, 40.0), seed_alloc())
            .unwrap();
        p.on_arrival(&mut server, b);
        let alloc_a = server.allocation(a).unwrap();
        let alloc_b = server.allocation(b).unwrap();
        assert_eq!(alloc_a.cores.count(), 18);
        assert_eq!(alloc_b.cores.count(), 18);
        assert_eq!(alloc_a.ways.count(), 10);
        assert!(!alloc_a.cores.overlaps(alloc_b.cores));
        assert!(!alloc_a.ways.overlaps(alloc_b.ways));
    }

    #[test]
    fn parties_eventually_fixes_a_single_violation() {
        let mut server = SimServer::deterministic();
        let mut p = Parties::new();
        // One service at a demanding load, starting from a half-machine
        // partition with a phantom light neighbour holding the rest.
        let heavy = server
            .launch(LaunchSpec::at_percent_load(Service::Xapian, 70.0), seed_alloc())
            .unwrap();
        p.on_arrival(&mut server, heavy);
        let light =
            server.launch(LaunchSpec::at_percent_load(Service::Login, 20.0), seed_alloc()).unwrap();
        p.on_arrival(&mut server, light);
        run(&mut server, &mut p, 120);
        let lat = server.latency(heavy).unwrap();
        assert!(
            !lat.violates_qos(),
            "PARTIES should converge within 120 s: p95 {:.2} target {:.2}",
            lat.p95_ms,
            lat.qos_target_ms
        );
    }

    #[test]
    fn parties_takes_many_actions_to_converge() {
        // The trial-and-error loop costs far more actions than decisions —
        // this is the inefficiency Fig. 15 quantifies.
        let mut server = SimServer::deterministic();
        let mut p = Parties::new();
        for (svc, pct) in [(Service::Moses, 40.0), (Service::ImgDnn, 40.0), (Service::Xapian, 40.0)]
        {
            let id = server.launch(LaunchSpec::at_percent_load(svc, pct), seed_alloc()).unwrap();
            p.on_arrival(&mut server, id);
        }
        run(&mut server, &mut p, 100);
        assert!(p.action_count() > 10, "actions {}", p.action_count());
    }

    #[test]
    fn downsize_reverts_when_it_breaks_qos() {
        let mut server = SimServer::deterministic();
        let mut p = Parties::new();
        // A service with slack; PARTIES will try to downsize it. At some
        // point a downsize crosses the cliff and must be reverted, leaving
        // QoS met at steady state.
        let id =
            server.launch(LaunchSpec::at_percent_load(Service::Moses, 60.0), seed_alloc()).unwrap();
        p.on_arrival(&mut server, id);
        run(&mut server, &mut p, 150);
        let lat = server.latency(id).unwrap();
        assert!(
            !lat.violates_qos(),
            "after revert cycles QoS must hold: p95 {:.2} / {:.2}",
            lat.p95_ms,
            lat.qos_target_ms
        );
        // And resources were actually reclaimed below the full machine.
        let alloc = server.allocation(id).unwrap();
        assert!(alloc.cores.count() < 36 || alloc.ways.count() < 20);
    }

    #[test]
    fn stealing_requires_a_donor_with_slack() {
        let mut server = SimServer::deterministic();
        let mut p = Parties::new();
        let a = server
            .launch(LaunchSpec::at_percent_load(Service::Xapian, 95.0), seed_alloc())
            .unwrap();
        p.on_arrival(&mut server, a);
        let b =
            server.launch(LaunchSpec::at_percent_load(Service::Login, 10.0), seed_alloc()).unwrap();
        p.on_arrival(&mut server, b);
        run(&mut server, &mut p, 150);
        // The heavy app should have stolen resources from the light one.
        let heavy_alloc = server.allocation(a).unwrap();
        let light_alloc = server.allocation(b).unwrap();
        assert!(
            heavy_alloc.cores.count() > light_alloc.cores.count(),
            "heavy {} vs light {}",
            heavy_alloc.cores.count(),
            light_alloc.cores.count()
        );
    }
}

//! Cross-crate integration tests for the OSML reproduction live in `tests/`.

//! Cross-crate tests of the partition-tolerant control plane: service
//! conservation under arbitrary interleavings of submit / finish /
//! node-kill / node-restore / run on a *lossy* command channel with
//! scripted partition windows, plus duplicate-delivery idempotence.

use osml_core::{
    Cluster, ClusterConfig, ClusterPlacement, Models, OsmlConfig, OsmlScheduler, ServiceDisposition,
};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{ChannelPlan, PartitionWindow};
use osml_workloads::{LaunchSpec, Service};
use proptest::prelude::*;

fn raw_scheduler() -> OsmlScheduler {
    OsmlScheduler::new(
        Models {
            model_a: ModelA::new(36, 20, 1),
            model_b: ModelB::new(36, 20, 2),
            model_b_prime: ModelBPrime::new(3),
            model_c: ModelC::new(4),
        },
        OsmlConfig::default(),
    )
}

/// Duplicate-delivery idempotence across the crate boundary: a channel
/// that duplicates *every* message must still leave exactly one replica
/// per running service, because the node-side sequence window dedups
/// commands and re-acks from the reply cache.
#[test]
fn duplicated_commands_never_double_place() {
    let cfg = ClusterConfig {
        channel: ChannelPlan { seed: 7, duplicate_prob: 1.0, ..ChannelPlan::none() },
        ..ClusterConfig::failover_enabled()
    };
    let mut cluster = Cluster::try_new(3, raw_scheduler(), OsmlConfig::default(), cfg, 77).unwrap();
    let mut ids = Vec::new();
    for service in [Service::Moses, Service::Login, Service::ImgDnn] {
        if let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(service, 25.0))
        {
            ids.push(h.id);
        }
    }
    cluster.run(15.0);
    for id in &ids {
        if cluster.disposition(*id) == Some(ServiceDisposition::Running) {
            assert_eq!(cluster.replicas_of(*id), 1, "id {id} must have exactly one replica");
        }
    }
    assert_eq!(cluster.ghost_replicas(), 0, "duplicates must never leave ghosts");
    cluster.unified_log().replay().expect("log must fold under total duplication");
}

/// One scripted operation of the conservation interleaving.
#[derive(Debug, Clone)]
enum Op {
    Submit(usize),
    FinishOldest,
    Kill(usize),
    Restore(usize),
    Run(u8),
}

/// Decodes one raw draw into a weighted operation (the vendored proptest
/// has no `prop_oneof`, so the mix is hand-rolled from an integer).
fn decode_op(raw: usize, nodes: usize) -> Op {
    let payload = raw / 10;
    match raw % 10 {
        0..=2 => Op::Submit(payload % 4),
        3..=4 => Op::FinishOldest,
        5 => Op::Kill(payload % nodes),
        6 => Op::Restore(payload % nodes),
        _ => Op::Run(1 + (payload % 5) as u8),
    }
}

const SERVICES: [Service; 4] =
    [Service::Moses, Service::Login, Service::ImgDnn, Service::Memcached];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation on a faulty control plane: arbitrary interleavings of
    /// submit / finish / kill / restore / run over a channel that drops,
    /// delays and duplicates messages and cuts scripted partition windows.
    /// At every step the ledger is exact — every id ever issued holds
    /// exactly one typed disposition — and running services resolve to
    /// believed-up nodes. After the chaos quiesces (partitions over,
    /// nodes restored, links drained) no ghost replica survives and every
    /// running service has exactly one physical replica; the golden log
    /// folds throughout.
    #[test]
    fn services_are_conserved_on_a_lossy_channel(
        raw_ops in proptest::collection::vec(0usize..1000, 1..32),
        seed in 0u64..1000,
        loss_step in 1u64..5,
        raw_windows in proptest::collection::vec(0u64..10_000, 0..3),
    ) {
        let nodes = 3usize;
        let loss = loss_step as f64 * 0.05;
        let mut channel = ChannelPlan::lossy(seed ^ 0xC0, loss);
        let mut max_end = 0.0f64;
        // Decode each raw draw into a (node, start, duration) partition
        // window — the vendored proptest has no tuple strategies.
        for &raw in &raw_windows {
            let node = (raw % nodes as u64) as usize;
            let start_s = ((raw / 10) % 40) as f64;
            let end_s = start_s + (2 + (raw / 400) % 18) as f64;
            channel.partitions.push(PartitionWindow { node, start_s, end_s });
            max_end = max_end.max(end_s);
        }
        let cfg = ClusterConfig { channel, ..ClusterConfig::failover_enabled() };
        let mut cluster =
            Cluster::try_new(nodes, raw_scheduler(), OsmlConfig::default(), cfg, seed).unwrap();

        let ops: Vec<Op> = raw_ops.iter().map(|&r| decode_op(r, nodes)).collect();
        let mut issued: Vec<u64> = Vec::new();
        let mut finished: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                Op::Submit(which) => {
                    let spec = LaunchSpec::at_percent_load(SERVICES[*which], 20.0);
                    let before = cluster.submitted();
                    let _ = cluster.submit(spec);
                    prop_assert_eq!(cluster.submitted(), before + 1);
                    issued.push(before);
                }
                Op::FinishOldest => {
                    if let Some(h) = cluster.services().first().copied() {
                        prop_assert!(cluster.finish(h));
                        finished.push(h.id);
                    }
                }
                Op::Kill(node) => cluster.kill_node(*node),
                Op::Restore(node) => cluster.restore_node(*node),
                Op::Run(s) => cluster.run(*s as f64),
            }
            // Invariant: the ledger covers every issued id, exactly once.
            let ledger = cluster.dispositions();
            prop_assert_eq!(ledger.len() as u64, cluster.submitted());
            for id in &issued {
                prop_assert!(
                    ledger.iter().filter(|(lid, _)| lid == id).count() == 1,
                    "id {} must appear exactly once in the ledger", id
                );
            }
            // Running services live on believed-up nodes (suspicion
            // strands a node's residents in the same transition that
            // marks it down, so the two views never disagree).
            for h in cluster.services() {
                prop_assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
                prop_assert!(cluster.node_is_up(h.node), "no service may live on a dead node");
            }
        }
        for id in &finished {
            prop_assert_eq!(cluster.disposition(*id), Some(ServiceDisposition::Finished));
        }

        // Quiesce: outlive every partition window, restore the fleet, and
        // give the at-least-once teardown machinery time to drain.
        for node in 0..nodes {
            cluster.restore_node(node);
        }
        cluster.run(max_end + 30.0);
        for node in 0..nodes {
            cluster.restore_node(node);
            prop_assert!(cluster.node_is_up(node));
        }
        cluster.run(10.0);
        prop_assert_eq!(
            cluster.ghost_replicas(), 0,
            "after quiesce every live replica must be the authoritative one"
        );
        for h in cluster.services() {
            prop_assert_eq!(
                cluster.replicas_of(h.id), 1,
                "running id {} must have exactly one replica", h.id
            );
        }
        cluster.unified_log().replay().expect("cluster log must fold after the interleaving");
    }
}

//! Cross-crate tests of the fault-tolerant cluster tier: service
//! conservation under arbitrary submit/finish/kill/recover interleavings,
//! failover across scripted node deaths, and golden-thread replay of
//! cluster runs.

use osml_core::{
    Cluster, ClusterConfig, ClusterError, ClusterPlacement, Models, OsmlConfig, OsmlScheduler,
    ServiceDisposition,
};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{NodeCrash, NodeFaultPlan};
use osml_workloads::{LaunchSpec, Service};
use proptest::prelude::*;

fn raw_scheduler() -> OsmlScheduler {
    OsmlScheduler::new(
        Models {
            model_a: ModelA::new(36, 20, 1),
            model_b: ModelB::new(36, 20, 2),
            model_b_prime: ModelBPrime::new(3),
            model_c: ModelC::new(4),
        },
        OsmlConfig::default(),
    )
}

#[test]
fn zero_node_cluster_is_a_typed_error() {
    assert_eq!(
        Cluster::try_new(0, raw_scheduler(), OsmlConfig::default(), ClusterConfig::default(), 1)
            .unwrap_err(),
        ClusterError::NoNodes
    );
}

/// Satellite regression: kill the node hosting a service, then resolve the
/// migrated service by cluster id — `locate`, `latency_over_target`, and
/// `finish` must never chase the stale `(node, app)` pair.
#[test]
fn failover_keeps_ids_resolvable_across_node_death() {
    let cfg = ClusterConfig {
        node_faults: NodeFaultPlan {
            crashes: vec![NodeCrash { node: 0, at_s: 10.0, recover_s: None }],
            ..NodeFaultPlan::none()
        },
        ..ClusterConfig::failover_enabled()
    };
    let mut cluster = Cluster::try_new(3, raw_scheduler(), OsmlConfig::default(), cfg, 42).unwrap();
    let mut handles = Vec::new();
    for service in [Service::Moses, Service::Login, Service::ImgDnn] {
        match cluster.submit(LaunchSpec::at_percent_load(service, 25.0)) {
            ClusterPlacement::Placed(h) => handles.push(h),
            ClusterPlacement::ClusterFull => panic!("an empty 3-node fleet rejected a service"),
        }
    }
    let on_zero: Vec<_> = handles.iter().filter(|h| h.node == 0).copied().collect();
    assert!(!on_zero.is_empty(), "first-fit must land something on node 0");

    cluster.run(20.0);
    assert!(!cluster.node_is_up(0));
    assert_eq!(cluster.failovers(), on_zero.len());
    for stale in &on_zero {
        let here = cluster.locate(stale.id).expect("failed-over service stays resolvable");
        assert_ne!(here.node, 0, "must have left the dead node");
        assert!(
            cluster.latency_over_target(stale.id).is_some(),
            "latency resolves through the new replica"
        );
        assert_eq!(cluster.disposition(stale.id), Some(ServiceDisposition::Running));
    }
    // The stale pre-death handle still finishes the service by id.
    let stale = on_zero[0];
    assert!(cluster.finish(stale));
    assert!(cluster.locate(stale.id).is_none());
    cluster.unified_log().replay().expect("cluster log must fold after failover");
}

/// One scripted operation of the conservation interleaving.
#[derive(Debug, Clone)]
enum Op {
    Submit(usize),
    FinishOldest,
    Kill(usize),
    Recover(usize),
    Run(u8),
}

/// Decodes one raw draw into a weighted operation (the vendored proptest
/// has no `prop_oneof`, so the mix is hand-rolled from an integer).
fn decode_op(raw: usize, nodes: usize) -> Op {
    let payload = raw / 10;
    match raw % 10 {
        0..=2 => Op::Submit(payload % 4),
        3..=4 => Op::FinishOldest,
        5 => Op::Kill(payload % nodes),
        6 => Op::Recover(payload % nodes),
        _ => Op::Run(1 + (payload % 5) as u8),
    }
}

const SERVICES: [Service; 4] =
    [Service::Moses, Service::Login, Service::ImgDnn, Service::Memcached];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation under arbitrary interleavings of submit / finish /
    /// node-kill / node-recover / run: every id ever issued holds exactly
    /// one disposition at all times (placed, evicted, rejected, finished —
    /// never lost, never duplicated), running services resolve to up
    /// nodes, and the golden log still folds at the end.
    #[test]
    fn services_are_conserved_under_chaos(
        raw_ops in proptest::collection::vec(0usize..1000, 1..40),
        seed in 0u64..1000,
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(|&r| decode_op(r, 3)).collect();
        let mut cluster = Cluster::try_new(
            3,
            raw_scheduler(),
            OsmlConfig::default(),
            ClusterConfig::failover_enabled(),
            seed,
        )
        .unwrap();
        let mut issued: Vec<u64> = Vec::new();
        let mut finished: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                Op::Submit(which) => {
                    let spec = LaunchSpec::at_percent_load(SERVICES[*which], 20.0);
                    let before = cluster.submitted();
                    let _ = cluster.submit(spec);
                    prop_assert_eq!(cluster.submitted(), before + 1);
                    issued.push(before);
                }
                Op::FinishOldest => {
                    if let Some(h) = cluster.services().first().copied() {
                        prop_assert!(cluster.finish(h));
                        finished.push(h.id);
                    }
                }
                Op::Kill(node) => cluster.kill_node(*node),
                Op::Recover(node) => cluster.restore_node(*node),
                Op::Run(s) => cluster.run(*s as f64),
            }
            // Invariant: the ledger covers every issued id, exactly once.
            let ledger = cluster.dispositions();
            prop_assert_eq!(ledger.len() as u64, cluster.submitted());
            for id in &issued {
                prop_assert!(
                    ledger.iter().filter(|(lid, _)| lid == id).count() == 1,
                    "id {} must appear exactly once in the ledger", id
                );
            }
            // Running services are exactly the placed, un-finished ones,
            // and they live on up nodes.
            for h in cluster.services() {
                prop_assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
                prop_assert!(cluster.node_is_up(h.node), "no service may live on a dead node");
            }
        }
        for id in &finished {
            prop_assert_eq!(cluster.disposition(*id), Some(ServiceDisposition::Finished));
        }
        cluster.unified_log().replay().expect("cluster log must fold after the interleaving");
    }
}

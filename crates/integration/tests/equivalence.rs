//! Engine equivalence: the event-driven scheduler core (timer wheel +
//! batched inference) must produce **bit-identical** event logs and final
//! layouts to the legacy scan-based loop on deterministic substrates.
//!
//! Coverage:
//!
//! * a property test over random arrival/departure/load scripts on the
//!   workload simulator (binary-rejection admission), pinning both the
//!   decision log and the full unified golden-thread log;
//! * the same property with overload management enabled (admission queue,
//!   wait timeouts, brownout shave/shed) through the overload harness;
//! * the canonical Fig. 20 overload script at both queue configurations;
//! * a quiet-fleet anchor proving the dirty-set probe memo actually skips
//!   work (fewer model decisions) without changing either log.

use osml_bench::overload::{overload_script, run_overload_detailed};
use osml_core::{EventLog, Models, OsmlConfig, OsmlScheduler, OverloadConfig, UnifiedLog};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{Allocation, AppId, FaultPlan, Placement, Scheduler, Substrate};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer, ALL_SERVICES};
use proptest::prelude::*;

/// An untrained (but structurally valid, seed-deterministic) scheduler:
/// equivalence is about control flow, not model quality, and skipping
/// training keeps the property-test cases cheap.
fn raw_scheduler(config: OsmlConfig) -> OsmlScheduler {
    OsmlScheduler::new(
        Models {
            model_a: ModelA::new(36, 20, 1),
            model_b: ModelB::new(36, 20, 2),
            model_b_prime: ModelBPrime::new(3),
            model_c: ModelC::new(4),
        },
        config,
    )
}

/// One scripted service for the binary-rejection property.
#[derive(Debug, Clone)]
struct Ev {
    service: Service,
    pct: f64,
    arrive_tick: usize,
    depart_tick: Option<usize>,
    load_change: Option<(usize, f64)>,
}

/// Decodes one script entry from 64 random bits (the vendored proptest has
/// no tuple/oneof strategies, so a bit-sliced `u64` stands in for them).
fn decode_ev(raw: u64) -> Ev {
    let service = ALL_SERVICES[(raw % ALL_SERVICES.len() as u64) as usize];
    let pct = 10.0 + ((raw >> 8) % 600) as f64 / 10.0;
    let arrive_tick = ((raw >> 18) % 8) as usize;
    let depart_tick = ((raw >> 21) & 1 == 1).then(|| 18 + ((raw >> 22) % 12) as usize);
    let load_change = ((raw >> 26) & 1 == 1)
        .then(|| (4 + ((raw >> 27) % 12) as usize, 10.0 + ((raw >> 31) % 700) as f64 / 10.0));
    Ev { service, pct, arrive_tick, depart_tick, load_change }
}

/// One engine's observable outcome over a script.
struct RunOutcome {
    log: EventLog,
    unified: UnifiedLog,
    layout: Vec<(u64, Allocation)>,
    /// Model decisions taken (Model-A predicts + Model-C inferences); the
    /// dirty-set memo may lower this in event mode without touching either
    /// log — skipped quiescent probes decide nothing.
    decisions: u64,
}

/// Drives one engine through the script and returns its observable outcome:
/// the decision log, the unified golden-thread log, the final
/// `(id, allocation)` layout and the model-decision count.
fn run_script(event_driven: bool, seed: u64, script: &[Ev]) -> RunOutcome {
    run_script_for(event_driven, seed, script, 36)
}

fn run_script_for(event_driven: bool, seed: u64, script: &[Ev], ticks: usize) -> RunOutcome {
    let mut scheduler = raw_scheduler(OsmlConfig { event_driven, ..OsmlConfig::default() });
    let mut server = SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() });
    let mut live: Vec<Option<AppId>> = vec![None; script.len()];
    for tick in 0..ticks {
        for (idx, ev) in script.iter().enumerate() {
            if live[idx].is_some() && ev.depart_tick == Some(tick) {
                let id = live[idx].take().expect("checked");
                let _ = server.remove(id);
                scheduler.on_departure(id);
            }
        }
        for (idx, ev) in script.iter().enumerate() {
            if live[idx].is_none() && ev.arrive_tick == tick && ev.depart_tick != Some(tick) {
                let spec = LaunchSpec::at_percent_load(ev.service, ev.pct);
                let alloc = osml_core::bootstrap_allocation(&mut server, spec.threads);
                let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
                match scheduler.on_arrival(&mut server, id) {
                    Placement::Placed => live[idx] = Some(id),
                    _ => {
                        let _ = server.remove(id);
                        scheduler.on_departure(id);
                    }
                }
            }
        }
        for (idx, ev) in script.iter().enumerate() {
            if let (Some(id), Some((at, pct2))) = (live[idx], ev.load_change) {
                if at == tick {
                    let rps = ev.service.params().nominal_max_rps() * pct2 / 100.0;
                    let _ = server.set_load(id, rps);
                }
            }
        }
        server.advance(1.0);
        scheduler.tick(&mut server);
    }
    let mut layout: Vec<(u64, Allocation)> = server
        .apps()
        .into_iter()
        .filter_map(|id| server.allocation(id).map(|a| (id.0, a)))
        .collect();
    layout.sort_by_key(|&(id, _)| id);
    RunOutcome {
        log: scheduler.log().clone(),
        unified: scheduler.unified_log().clone(),
        layout,
        decisions: scheduler.decision_count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_match_on_random_scripts(
        script in proptest::collection::vec((0u64..u64::MAX).prop_map(decode_ev), 1..5),
        seed in 0u64..1000,
    ) {
        let scan = run_script(false, seed, &script);
        let event = run_script(true, seed, &script);
        prop_assert_eq!(scan.log, event.log, "event logs diverged (seed {})", seed);
        prop_assert_eq!(
            scan.unified, event.unified,
            "unified golden-thread logs diverged (seed {})", seed
        );
        prop_assert_eq!(scan.layout, event.layout, "final layouts diverged (seed {})", seed);
        prop_assert!(
            event.decisions <= scan.decisions,
            "the dirty-set memo may only remove decisions, never add them \
             (scan {} vs event {}, seed {})",
            scan.decisions, event.decisions, seed
        );
    }

    #[test]
    fn engines_match_under_overload(seed in 0u64..200, level_pct in 80u32..160) {
        // The overload harness exercises the queue-deadline timers,
        // brownout hysteresis and shave/shed paths that the plain script
        // cannot reach.
        let template = raw_scheduler(OsmlConfig::default());
        let script = overload_script(f64::from(level_pct) / 100.0);
        let run = |event_driven: bool| {
            run_overload_detailed(
                &template,
                &script,
                seed,
                OverloadConfig::enabled(),
                FaultPlan::none(),
                false,
                OsmlConfig { event_driven, ..OsmlConfig::default() },
            )
        };
        let (_, scan_log, scan_layout) = run(false);
        let (_, event_log, event_layout) = run(true);
        prop_assert_eq!(scan_log, event_log, "overload event logs diverged (seed {})", seed);
        prop_assert_eq!(scan_layout, event_layout, "overload layouts diverged (seed {})", seed);
    }
}

/// A quiet fleet: a few lightly-loaded services that arrive early, never
/// depart and never change load. Once each settles (surplus reclaimed to
/// its floor), every further probe observes the same counters, latency and
/// layout — exactly the window the dirty-set memo exists for. The memo must
/// skip those probes (strictly fewer model decisions than the scan engine)
/// while both logs and the final layout stay bit-identical.
#[test]
fn dirty_set_memo_skips_quiet_probes_without_changing_the_logs() {
    let quiet =
        |service| Ev { service, pct: 15.0, arrive_tick: 0, depart_tick: None, load_change: None };
    let script = vec![quiet(Service::Memcached), quiet(Service::Nginx), quiet(Service::Masstree)];
    let scan = run_script_for(false, 11, &script, 60);
    let event = run_script_for(true, 11, &script, 60);
    assert_eq!(scan.log, event.log, "event logs diverged on the quiet fleet");
    assert_eq!(scan.unified, event.unified, "unified logs diverged on the quiet fleet");
    assert_eq!(scan.layout, event.layout, "final layouts diverged on the quiet fleet");
    assert!(
        event.decisions < scan.decisions,
        "the memo never fired: a settled fleet must skip quiescent probes \
         (scan made {} model decisions, event {})",
        scan.decisions,
        event.decisions
    );
}

/// The canonical Fig. 20 sweep point, both with the queue disabled (binary
/// rejection, timers never armed for admission) and enabled — a fixed,
/// always-run anchor alongside the randomized property.
#[test]
fn engines_match_on_fig20_script() {
    let template = raw_scheduler(OsmlConfig::default());
    let script = overload_script(1.0);
    for overload in [OverloadConfig::default(), OverloadConfig::enabled()] {
        let run = |event_driven: bool| {
            run_overload_detailed(
                &template,
                &script,
                7,
                overload.clone(),
                FaultPlan::none(),
                false,
                OsmlConfig { event_driven, ..OsmlConfig::default() },
            )
        };
        let (scan_outcome, scan_log, scan_layout) = run(false);
        let (event_outcome, event_log, event_layout) = run(true);
        assert_eq!(scan_log, event_log);
        assert_eq!(scan_layout, event_layout);
        assert_eq!(scan_outcome.actions, event_outcome.actions);
        assert_eq!(scan_outcome.timeouts, event_outcome.timeouts);
    }
}

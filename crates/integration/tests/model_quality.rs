//! Cross-crate model-quality checks: models trained by `osml-dataset` must
//! reproduce the ground truth `osml-workloads` computes, on held-out loads.

use osml_dataset::{
    train_model_a, train_model_b, train_model_b_prime, FeatureProbe, TrainingConfig,
};
use osml_platform::Topology;
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::Service;

fn cfg() -> TrainingConfig {
    TrainingConfig::default()
}

#[test]
fn model_a_generalizes_to_held_out_loads() {
    let (model, report) = train_model_a(&cfg());
    assert!(
        report.validation_metrics.expect("split held out").within_one > 0.9,
        "validation within-one too low: {:?}",
        report.validation_metrics
    );

    // Held-out loads: Table-1 indices 1 and 3 are not in the default sweep.
    let topo = Topology::xeon_e5_2697_v4();
    let mut total = 0usize;
    let mut close = 0usize;
    for service in [Service::Moses, Service::Xapian, Service::ImgDnn, Service::Masstree] {
        for idx in [1usize, 3] {
            let Some(&rps) = service.params().table1_rps.get(idx) else { continue };
            let threads = service.params().default_threads;
            let Some(truth) = LatencyGrid::sweep(&topo, service, threads, rps).oaa() else {
                continue;
            };
            let mut probe = FeatureProbe::new(service, threads, rps, 0.0, 77);
            let pred = model.predict(&probe.sample_at(12, 10));
            total += 1;
            if (pred.oaa.cores as i64 - truth.cores as i64).abs() <= 4
                && (pred.oaa.ways as i64 - truth.ways as i64).abs() <= 4
            {
                close += 1;
            }
        }
    }
    assert!(close * 10 >= total * 6, "only {close}/{total} held-out OAA predictions within +/-4");
}

#[test]
fn model_b_offers_grow_with_the_budget() {
    let (model, _) = train_model_b(&cfg());
    let mut probe = FeatureProbe::new(Service::Specjbb, 36, 9000.0, 0.0, 78);
    let sample = probe.sample_at(20, 10);
    let tight = model.predict(&sample, 0.05).most_generous().total();
    let loose = model.predict(&sample, 0.20).most_generous().total();
    assert!(loose + 1 >= tight, "bigger budget must not shrink offers: {tight} vs {loose}");
}

#[test]
fn model_b_prime_prices_deeper_deprivations_higher() {
    let (model, _) = train_model_b_prime(&cfg());
    let mut probe = FeatureProbe::new(Service::Moses, 16, 2600.0, 0.0, 79);
    let sample = probe.sample_at(16, 10);
    let shallow = model.predict(&sample, 1, 1);
    let deep = model.predict(&sample, 6, 5);
    assert!(
        deep >= shallow - 0.02,
        "slowdown must not fall with deprivation depth: {shallow:.3} vs {deep:.3}"
    );
    // And the deep one should be clearly expensive for a loaded Moses.
    assert!(deep > 0.10, "deep deprivation of a loaded service must cost: {deep:.3}");
}

#[test]
fn rcliff_predictions_sit_at_or_below_the_oaa() {
    let (model, _) = train_model_a(&cfg());
    for service in [Service::Moses, Service::Xapian, Service::Specjbb] {
        let rps = service.params().nominal_max_rps() * 0.5;
        let mut probe = FeatureProbe::new(service, service.params().default_threads, rps, 0.0, 80);
        let pred = model.predict(&probe.sample_at(14, 10));
        assert!(
            pred.rcliff.cores <= pred.oaa.cores + 1 && pred.rcliff.ways <= pred.oaa.ways + 1,
            "{service}: rcliff {:?} should not exceed oaa {:?}",
            pred.rcliff,
            pred.oaa
        );
    }
}

//! Golden-thread replay: the unified event log recorded by
//! [`osml_bench::replay::run_recorded`] must fold back — via
//! [`osml_core::replay`] — into exactly the live scheduler's observable
//! state, bit for bit, across every regime the scheduler supports.
//!
//! Coverage:
//!
//! * a property test over random arrival/departure scripts (admission
//!   queue enabled) asserting replay == live, telemetry-strip invariance
//!   and a lossless JSONL round-trip;
//! * the canonical Fig. 20 overload anchor at both engine configurations
//!   and both admission policies;
//! * a chaos run with injected substrate faults recorded as world facts;
//! * a controller crashed mid-brownout and warm-restarted — the restored
//!   log (snapshot prefix + durable suffix + restart events) still folds
//!   to the recovered state;
//! * bit-identical recordings regardless of the `OSML_JOBS` work-pool
//!   width driving the runs.

use osml_bench::overload::overload_script;
use osml_bench::replay::{run_recorded, RecordedRun};
use osml_core::{
    Decision, EventBody, Models, OsmlConfig, OsmlScheduler, OverloadConfig, UnifiedLog, WorldFact,
};
use osml_ml::par::parallel_map_jobs;
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{FaultPlan, FaultProfile};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::{Service, ALL_SERVICES};
use proptest::prelude::*;

/// An untrained (but structurally valid, seed-deterministic) scheduler:
/// replay sufficiency is about control flow, not model quality, and
/// skipping training keeps the sequential test runs cheap.
fn raw_scheduler() -> OsmlScheduler {
    OsmlScheduler::new(
        Models {
            model_a: ModelA::new(36, 20, 1),
            model_b: ModelB::new(36, 20, 2),
            model_b_prime: ModelBPrime::new(3),
            model_c: ModelC::new(4),
        },
        OsmlConfig::default(),
    )
}

/// Decodes one scripted arrival from 64 random bits (the vendored proptest
/// has no tuple/oneof strategies, so a bit-sliced `u64` stands in).
fn decode_arrival(raw: u64) -> ArrivalEvent {
    let service = ALL_SERVICES[(raw % ALL_SERVICES.len() as u64) as usize];
    let pct = 10.0 + ((raw >> 8) % 500) as f64 / 10.0;
    let arrive_s = ((raw >> 18) % 30) as f64;
    let depart_s =
        if (raw >> 23) & 1 == 1 { 40.0 + ((raw >> 24) % 40) as f64 } else { f64::INFINITY };
    ArrivalEvent {
        service,
        arrive_s,
        depart_s,
        threads: service.params().default_threads,
        load: LoadSchedule::Constant { rps: service.params().nominal_max_rps() * pct / 100.0 },
    }
}

/// A short randomized world: three stable anchors plus the decoded surge,
/// 90 simulated seconds.
fn random_script(raws: &[u64]) -> ArrivalScript {
    let anchor = |service: Service, arrive: f64, pct: f64| ArrivalEvent {
        service,
        arrive_s: arrive,
        depart_s: f64::INFINITY,
        threads: service.params().default_threads,
        load: LoadSchedule::Constant { rps: service.params().nominal_max_rps() * pct / 100.0 },
    };
    let mut events = vec![
        anchor(Service::Moses, 0.0, 30.0),
        anchor(Service::ImgDnn, 2.0, 25.0),
        anchor(Service::Xapian, 4.0, 25.0),
    ];
    events.extend(raws.iter().map(|&raw| decode_arrival(raw)));
    ArrivalScript::new(events, 90.0)
}

/// Replay == live, plus the two log invariants every recording must hold:
/// stripping telemetry leaves the fold unchanged, and the JSONL encoding
/// round-trips losslessly.
fn assert_replay_invariants(run: &RecordedRun) {
    let replayed = run.log.replay().expect("log is replay-sufficient");
    assert_eq!(replayed, run.live, "replayed state must equal live state bit-for-bit");

    let stripped = run.log.stripped();
    assert_eq!(
        stripped.replay().expect("stripped log still replays"),
        replayed,
        "telemetry layer must not affect the fold"
    );

    let text = run.log.to_jsonl();
    let (decoded, loss) = UnifiedLog::from_jsonl_tolerant(&text).expect("own encoding parses");
    assert_eq!(loss.bytes_dropped, 0, "no tail loss on a clean encoding");
    assert_eq!(&decoded, &run.log, "JSONL round-trip must be lossless");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn randomized_worlds_replay_to_live_state(
        raws in proptest::collection::vec(0u64..u64::MAX, 1..4),
        seed in 0u64..1000,
    ) {
        let run = run_recorded(
            &raw_scheduler(),
            &random_script(&raws),
            seed,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        let replayed = run.log.replay().expect("log is replay-sufficient");
        prop_assert_eq!(&replayed, &run.live, "replay diverged from live (seed {})", seed);
        let stripped = run.log.stripped().replay().expect("stripped log replays");
        prop_assert_eq!(&stripped, &replayed, "telemetry strip changed the fold");
        let (decoded, loss) =
            UnifiedLog::from_jsonl_tolerant(&run.log.to_jsonl()).expect("own encoding parses");
        prop_assert_eq!(loss.bytes_dropped, 0, "clean tail on a clean encoding");
        prop_assert_eq!(&decoded, &run.log, "JSONL round-trip lost events");
    }
}

/// The canonical Fig. 20 anchor: both engines, both admission policies.
/// The fixed, always-run counterpart to the randomized property.
#[test]
fn fig20_anchor_replays_for_both_engines() {
    let template = raw_scheduler();
    let script = overload_script(1.0);
    for overload in [OverloadConfig::default(), OverloadConfig::enabled()] {
        for event_driven in [false, true] {
            let run = run_recorded(
                &template,
                &script,
                7,
                overload.clone(),
                FaultPlan::none(),
                false,
                OsmlConfig { event_driven, ..OsmlConfig::default() },
            );
            assert_replay_invariants(&run);
        }
    }
}

/// Injected substrate faults enter the world-fact layer and the log still
/// folds to the live state — chaos does not break replay sufficiency.
#[test]
fn chaos_run_with_faults_replays_to_live_state() {
    let run = run_recorded(
        &raw_scheduler(),
        &overload_script(1.0),
        11,
        OverloadConfig::enabled(),
        FaultPlan::new(0xC0FFEE, FaultProfile::chaos_default()),
        false,
        OsmlConfig::default(),
    );
    assert!(run.faults_injected > 0, "chaos profile injected nothing; raise the rate");
    let recorded_faults = run
        .log
        .world_facts()
        .filter(|ev| matches!(ev.body, EventBody::World(WorldFact::FaultInjected { .. })))
        .count();
    assert_eq!(
        recorded_faults, run.faults_injected,
        "every injected fault must appear in the world-fact layer"
    );
    assert_replay_invariants(&run);
}

/// Crash mid-brownout, warm restart, keep recording: the log that spans the
/// crash (snapshot prefix + durable journal suffix + `ControllerCrashed` +
/// `Restarted` + repair decisions) folds to the recovered scheduler's state,
/// and the warm restart preserved the overload ledger exactly as the
/// fig19/fig20 recovery assertions demand.
#[test]
fn crash_mid_brownout_replay_matches_warm_restart() {
    let run = run_recorded(
        &raw_scheduler(),
        &overload_script(1.6),
        7,
        OverloadConfig::enabled(),
        FaultPlan::none(),
        true,
        OsmlConfig::default(),
    );
    assert!(run.restarted, "the controller was never killed mid-brownout");
    assert_eq!(
        run.restart_resumed_state,
        Some(true),
        "warm restart lost queue/brownout/shave state"
    );
    let crashed = run
        .log
        .events()
        .iter()
        .any(|ev| matches!(ev.body, EventBody::World(WorldFact::ControllerCrashed)));
    let restarted =
        run.log.events().iter().any(|ev| {
            matches!(ev.body, EventBody::Decision(Decision::Restarted { warm: true, .. }))
        });
    assert!(crashed, "the crash must be recorded as a world fact");
    assert!(restarted, "the warm restart must be recorded as a decision");
    assert_replay_invariants(&run);
}

/// The recording (and therefore the replay) is independent of the
/// `OSML_JOBS` work-pool width: driving the same seeds through one worker
/// and through four must produce byte-identical logs. Job counts are
/// injected via `parallel_map_jobs` rather than `set_var`, which would be
/// unsound under the parallel test runner.
#[test]
fn recordings_are_identical_across_job_pool_widths() {
    let seeds: Vec<u64> = vec![3, 17];
    let record = |seed: &u64| {
        let run = run_recorded(
            &raw_scheduler(),
            &random_script(&[0x5EED_u64.wrapping_mul(seed + 1)]),
            *seed,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        run.log.to_jsonl()
    };
    let one_job = parallel_map_jobs(1, &seeds, record);
    let four_jobs = parallel_map_jobs(4, &seeds, record);
    assert_eq!(one_job, four_jobs, "job-pool width changed a recorded log");
}

//! Fault-injection integration: the resilient controller against the
//! deterministic chaos substrate, across crate boundaries.
//!
//! Covers the robustness acceptance criteria end to end: a zero-probability
//! fault plan is observationally transparent, arbitrary fault schedules
//! never corrupt the machine layout, fault traces are independent of the
//! training job count, and a scripted outage drives the watchdog through a
//! full `FallbackEngaged` → `Recovered` cycle.

use std::sync::OnceLock;

use osml_bench::chaos::{layout_invariants_ok, run_chaos_colocation};
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::{EventKind, Models, OsmlConfig, OsmlScheduler};
use osml_dataset::{SweepConfig, TrainedModels, TrainingConfig};
use osml_ml::TrainerConfig;
use osml_platform::{
    FailWindow, FaultPlan, FaultProfile, FaultySubstrate, Placement, Scheduler, Substrate,
};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use proptest::prelude::*;

/// One trained suite shared by every test in this file (training is
/// deterministic, so sharing loses nothing).
fn suite() -> &'static OsmlScheduler {
    static SUITE: OnceLock<OsmlScheduler> = OnceLock::new();
    SUITE.get_or_init(|| trained_suite(SuiteConfig::Standard))
}

fn sim(seed: u64) -> SimServer {
    SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() })
}

/// A zero-probability profile whose decision path still runs (the far-future
/// fail window keeps `is_none()` false), so transparency is proven for the
/// hashing code, not just the early-out.
fn armed_but_harmless() -> FaultProfile {
    FaultProfile {
        fail_windows: vec![FailWindow { start_s: 1.0e9, end_s: 2.0e9 }],
        ..FaultProfile::none()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With every fault probability at 0.0 the wrapped substrate is
    /// byte-identical to the bare one across an arbitrary op sequence.
    #[test]
    fn zero_probability_substrate_is_transparent(
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        loads in proptest::collection::vec(10.0f64..60.0, 1..4),
        steps in proptest::collection::vec(0.5f64..3.0, 1..12),
    ) {
        let services = [Service::Moses, Service::Xapian, Service::ImgDnn];
        let mut plain = sim(seed);
        let mut wrapped =
            FaultySubstrate::new(sim(seed), FaultPlan::new(fault_seed, armed_but_harmless()));

        let mut ids = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            let spec = LaunchSpec::at_percent_load(services[i % services.len()], load);
            let alloc = osml_core::bootstrap_allocation(&mut plain, spec.threads);
            let a = plain.launch(spec, alloc).unwrap();
            let b = wrapped.inner_mut().launch(spec, alloc).unwrap();
            prop_assert_eq!(a, b);
            ids.push(a);
        }
        for (tick, &dt) in steps.iter().enumerate() {
            plain.advance(dt);
            wrapped.advance(dt);
            prop_assert_eq!(plain.now(), wrapped.now());
            // Exercise the actuation path on one app per step.
            let id = ids[tick % ids.len()];
            let grown = plain.allocation(id).unwrap();
            prop_assert_eq!(plain.reallocate(id, grown).is_ok(), wrapped.reallocate(id, grown).is_ok());
            for &id in &ids {
                prop_assert_eq!(plain.sample(id), wrapped.sample(id));
                prop_assert_eq!(plain.latency(id), wrapped.latency(id));
                prop_assert_eq!(plain.allocation(id), wrapped.allocation(id));
            }
        }
        prop_assert_eq!(wrapped.fault_count(), 0);
        prop_assert_eq!(wrapped.injected_latency_ms(), 0.0);
    }
}

proptest! {
    // Each case replays a full co-location, so keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No fault schedule — whatever the mix and seed — may ever leave the
    /// machine with an invalid allocation or a double-assigned core, and the
    /// controller must survive it without panicking.
    #[test]
    fn layout_invariants_hold_under_any_fault_schedule(
        fault_seed in 0u64..10_000,
        rate in 0.0f64..0.4,
        stale in 0.0f64..0.3,
        corruption in 0.0f64..0.2,
        sim_seed in 0u64..100,
    ) {
        let profile = FaultProfile {
            counter_stale_prob: stale,
            counter_corruption_prob: corruption,
            ..FaultProfile::at_rate(rate)
        };
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 30.0),
            LaunchSpec::at_percent_load(Service::Xapian, 30.0),
        ];
        let mut osml = suite().clone();
        let out = run_chaos_colocation(
            &mut osml,
            &specs,
            25,
            sim_seed,
            FaultPlan::new(fault_seed, profile),
        );
        prop_assert!(out.layout_always_valid, "half-applied layout: {:?}", out);
        // The controller never mistakes injected faults for capacity: every
        // observed fault is accounted for in the log, none crashes the run.
        prop_assert!(out.faults_observed <= out.faults_injected + out.retries);
    }
}

/// The fault trace and every scheduler decision depend only on the fault
/// seed and call sequence — not on how many worker threads trained the
/// models (`SweepConfig::jobs` 1 vs 4).
#[test]
fn fault_trace_is_independent_of_training_job_count() {
    let train = |jobs: usize| -> OsmlScheduler {
        let training = TrainingConfig {
            sweep: SweepConfig { jobs: Some(jobs), ..SweepConfig::default() },
            trainer: TrainerConfig { epochs: 160, batch_size: 256, ..TrainerConfig::default() },
            dqn_steps: 400,
            seed: 0x05_11,
        };
        let t = TrainedModels::train(&training);
        let models = Models {
            model_a: t.model_a,
            model_b: t.model_b,
            model_b_prime: t.model_b_prime,
            model_c: t.model_c,
        };
        OsmlScheduler::new(models, OsmlConfig::default())
    };
    let specs = [
        LaunchSpec::at_percent_load(Service::Xapian, 30.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
    ];
    let plan = FaultPlan::new(0x00DE_7E12, FaultProfile::chaos_default());

    let mut seq = train(1);
    let out_seq = run_chaos_colocation(&mut seq, &specs, 40, 9, plan.clone());
    let mut par = train(4);
    let out_par = run_chaos_colocation(&mut par, &specs, 40, 9, plan);

    // Identical decisions → identical event logs (including every
    // FaultInjected/ActuationRetried entry) and identical outcomes.
    assert_eq!(seq.log(), par.log());
    assert_eq!(serde_json::to_string(&out_seq).unwrap(), serde_json::to_string(&out_par).unwrap());
    assert!(out_seq.faults_injected > 0, "chaos profile should have fired at least once");
}

/// A scripted mid-run outage must push the watchdog into heuristic fallback
/// and, once the platform is quiet again, back out: every `FallbackEngaged`
/// is matched by a `Recovered`, and every service ends QoS-compliant.
#[test]
fn scripted_outage_engages_fallback_and_recovers() {
    let profile = FaultProfile {
        // Total actuation outage between t=20s and t=34s; silence afterwards
        // so recovery is deterministic.
        fail_windows: vec![FailWindow { start_s: 20.0, end_s: 34.0 }],
        quiet_after_s: Some(34.0),
        ..FaultProfile::chaos_default()
    };
    let mut server = FaultySubstrate::new(sim(11), FaultPlan::new(0xBAD_CAFE, profile));
    let mut osml = suite().clone();

    let specs = [
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
        LaunchSpec::at_percent_load(Service::Xapian, 30.0),
    ];
    let mut ids = Vec::new();
    for &spec in &specs {
        let alloc = osml_core::bootstrap_allocation(&mut server, spec.threads);
        let id = server.inner_mut().launch(spec, alloc).unwrap();
        server.advance(1.0);
        assert_eq!(osml.on_arrival(&mut server, id), Placement::Placed);
        ids.push(id);
    }

    let mut engaged_at = None;
    for tick in 0..130 {
        server.advance(1.0);
        if server.now() >= 19.0 && server.now() < 20.0 {
            // Load spike just before the outage: the controller now *needs*
            // to actuate, and every actuation inside the window fails.
            let spec = server.inner().spec_of(ids[0]).unwrap();
            server.inner_mut().set_load(ids[0], spec.offered_rps * 2.2).unwrap();
        }
        osml.tick(&mut server);
        assert!(layout_invariants_ok(&server), "invalid layout at tick {tick}");
        if engaged_at.is_none() && ids.iter().any(|&id| osml.in_fallback(id)) {
            engaged_at = Some(server.now());
        }
    }

    let log = osml.log();
    let engaged = log.count_kind(|k| matches!(k, EventKind::FallbackEngaged { .. }));
    let recovered = log.count_kind(|k| matches!(k, EventKind::Recovered { .. }));
    assert!(engaged >= 1, "outage must trip the watchdog: {engaged_at:?}");
    assert_eq!(engaged, recovered, "every FallbackEngaged needs a matching Recovered");
    assert_eq!(ids.iter().filter(|&&id| osml.in_fallback(id)).count(), 0);
    for &id in &ids {
        let lat = server.latency(id).unwrap();
        assert!(
            !lat.violates_qos(),
            "service {id:?} must converge back to QoS: p95={} target={}",
            lat.p95_ms,
            lat.qos_target_ms
        );
    }
    assert!(server.fault_count() > 0);
}

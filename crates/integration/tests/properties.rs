//! Property-based tests (proptest) on the core data structures and the
//! simulator's physical invariants.

use osml_bench::chaos::layout_invariants_ok;
use osml_core::{Models, OsmlConfig, OsmlScheduler, OverloadConfig};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{
    Allocation, CoreSet, MbaThrottle, Scheduler, SloClass, Substrate, Topology, WayMask,
};
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::perf::{self, PerfInput};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer, ALL_SERVICES};
use proptest::prelude::*;

fn arb_service() -> impl Strategy<Value = Service> {
    (0..ALL_SERVICES.len()).prop_map(|i| ALL_SERVICES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn way_masks_round_trip(first in 0usize..19, count in 1usize..20) {
        prop_assume!(first + count <= 20);
        let m = WayMask::contiguous(first, count).unwrap();
        prop_assert_eq!(m.first(), first);
        prop_assert_eq!(m.count(), count);
        prop_assert_eq!(m.end(), first + count);
        prop_assert_eq!(WayMask::from_bits(m.bits()).unwrap(), m);
    }

    #[test]
    fn way_mask_resize_stays_valid(first in 0usize..19, count in 1usize..20, delta in -25i32..25) {
        prop_assume!(first + count <= 20);
        let m = WayMask::contiguous(first, count).unwrap();
        let r = m.resized(delta, 20);
        prop_assert!(r.count() >= 1);
        prop_assert!(r.end() <= 20);
        // Resizing is exact when unclamped.
        let expect = (count as i32 + delta).clamp(1, 20) as usize;
        prop_assert_eq!(r.count(), expect);
    }

    #[test]
    fn core_set_operations_are_consistent(bits_a in 0u64..(1 << 36), bits_b in 0u64..(1 << 36)) {
        let a = CoreSet::from_cores((0..36).filter(|&c| bits_a & (1 << c) != 0));
        let b = CoreSet::from_cores((0..36).filter(|&c| bits_b & (1 << c) != 0));
        prop_assert_eq!(a.union(b).count() + a.intersection(b).count(), a.count() + b.count());
        prop_assert_eq!(a.difference(b).count(), a.count() - a.intersection(b).count());
        prop_assert_eq!(a.overlaps(b), a.intersection(b).count() > 0);
    }

    #[test]
    fn effective_cores_bounded_by_logical_and_physical(bits in 1u64..(1 << 36)) {
        let topo = Topology::xeon_e5_2697_v4();
        let set = CoreSet::from_cores((0..36).filter(|&c| bits & (1 << c) != 0));
        let eff = set.effective_cores(&topo);
        prop_assert!(eff > 0.0);
        prop_assert!(eff <= set.count() as f64 + 1e-9);
        prop_assert!(eff <= 18.0 * 1.3 + 1e-9);
    }

    #[test]
    fn latency_monotone_in_each_resource(
        service in arb_service(),
        cores in 2usize..18,
        ways in 2usize..20,
        load_frac in 0.1f64..0.9,
    ) {
        let params = service.params();
        let rps = params.nominal_max_rps() * load_frac;
        let eval = |c: usize, w: usize| {
            perf::evaluate(
                params,
                &PerfInput::solo(params.default_threads, rps, c as f64, w as f64 * 2.25),
            )
            .p95_ms
        };
        let here = eval(cores, ways);
        prop_assert!(eval(cores - 1, ways) >= here - 1e-9, "more cores must not hurt");
        prop_assert!(eval(cores, ways - 1) >= here - 1e-9, "more ways must not hurt");
    }

    #[test]
    fn latency_monotone_in_load(
        service in arb_service(),
        f1 in 0.1f64..0.5,
        f2 in 0.5f64..1.2,
    ) {
        let params = service.params();
        let eval = |f: f64| {
            perf::evaluate(
                params,
                &PerfInput::solo(params.default_threads, params.nominal_max_rps() * f, 12.0, 22.5),
            )
            .p95_ms
        };
        prop_assert!(eval(f2) >= eval(f1) - 1e-9);
    }

    #[test]
    fn oaa_when_present_meets_qos(service in arb_service(), load_frac in 0.1f64..0.8) {
        let topo = Topology::xeon_e5_2697_v4();
        let rps = service.params().nominal_max_rps() * load_frac;
        let grid = LatencyGrid::sweep(&topo, service, service.params().default_threads, rps);
        if let Some(oaa) = grid.oaa() {
            prop_assert!(grid.meets_qos(oaa));
            let cliff = grid.rcliff().unwrap();
            prop_assert!(oaa.cores >= cliff.cores);
            prop_assert!(oaa.ways >= cliff.ways);
            prop_assert!(grid.meets_qos(cliff));
        }
    }

    #[test]
    fn sim_conserves_reported_allocations(
        c1 in 1usize..12, c2 in 1usize..12,
        w1 in 1usize..8, w2 in 1usize..8,
    ) {
        let mut server = SimServer::new(SimConfig { noise_sigma: 0.0, seed: 1, ..SimConfig::default() });
        let a1 = Allocation::new(
            CoreSet::from_cores(0..c1),
            WayMask::contiguous(0, w1).unwrap(),
            MbaThrottle::unthrottled(),
        );
        let a2 = Allocation::new(
            CoreSet::from_cores(c1..c1 + c2),
            WayMask::contiguous(w1, w2).unwrap(),
            MbaThrottle::unthrottled(),
        );
        let id1 = server.launch(LaunchSpec::at_percent_load(Service::Moses, 20.0), a1).unwrap();
        let id2 = server.launch(LaunchSpec::at_percent_load(Service::Xapian, 20.0), a2).unwrap();
        server.advance(2.0);
        prop_assert_eq!(server.allocation(id1).unwrap(), a1);
        prop_assert_eq!(server.allocation(id2).unwrap(), a2);
        prop_assert_eq!(server.idle_cores().count(), 36 - c1 - c2);
        prop_assert_eq!(server.idle_way_count(), 20 - w1 - w2);
        // Counters exist and are physical.
        let s = server.sample(id1).unwrap();
        prop_assert!(s.ipc > 0.0 && s.llc_misses_per_sec >= 0.0 && s.mbl_gbps >= 0.0);
    }

    #[test]
    fn adding_a_neighbour_never_speeds_you_up(
        service in arb_service(),
        load_frac in 0.2f64..0.6,
    ) {
        let mut server = SimServer::new(SimConfig { noise_sigma: 0.0, seed: 2, ..SimConfig::default() });
        let alloc = Allocation::new(
            CoreSet::from_cores(0..10),
            WayMask::contiguous(0, 8).unwrap(),
            MbaThrottle::unthrottled(),
        );
        let id = server
            .launch(LaunchSpec::at_percent_load(service, load_frac * 100.0), alloc)
            .unwrap();
        server.advance(2.0);
        let solo = server.latency(id).unwrap().p95_ms;
        // A bandwidth-hungry neighbour on disjoint cores/ways.
        let neighbor = Allocation::new(
            CoreSet::from_cores(10..20),
            WayMask::contiguous(8, 4).unwrap(),
            MbaThrottle::unthrottled(),
        );
        server
            .launch(LaunchSpec::at_percent_load(Service::Specjbb, 80.0), neighbor)
            .unwrap();
        server.advance(2.0);
        let contended = server.latency(id).unwrap().p95_ms;
        prop_assert!(contended >= solo - 1e-6, "neighbour cannot help: {solo} -> {contended}");
    }
}

/// An untrained (structurally valid) scheduler: the overload property is
/// about bookkeeping, not decision quality, and training would dominate the
/// proptest budget.
fn untrained_overloaded() -> OsmlScheduler {
    OsmlScheduler::new(
        Models {
            model_a: ModelA::new(36, 20, 1),
            model_b: ModelB::new(36, 20, 2),
            model_b_prime: ModelBPrime::new(3),
            model_c: ModelC::new(4),
        },
        OsmlConfig { overload: OverloadConfig::enabled(), ..OsmlConfig::default() },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of arrivals (admitted, deferred or rejected),
    /// departures and ticks never leak cores or ways: the layout stays free
    /// of core double-assignment throughout, and once every service is gone
    /// the whole machine reads idle again.
    #[test]
    fn overload_interleavings_never_leak_resources(ops in proptest::collection::vec(0u8..255, 1..32)) {
        let mut sched = untrained_overloaded();
        let mut server =
            SimServer::new(SimConfig { noise_sigma: 0.0, seed: 0xA110C, ..SimConfig::default() });
        let mut live: Vec<osml_platform::AppId> = Vec::new();
        let mut waiting: Vec<u64> = Vec::new();

        let launch_and_submit =
            |sched: &mut OsmlScheduler,
             server: &mut SimServer,
             live: &mut Vec<osml_platform::AppId>,
             waiting: &mut Vec<u64>,
             op: u8| {
                let service = ALL_SERVICES[op as usize % ALL_SERVICES.len()];
                let class = match op % 3 {
                    0 => SloClass::LatencyCritical,
                    1 => SloClass::Degradable,
                    _ => SloClass::BestEffort,
                };
                let alloc = osml_core::bootstrap_allocation(server, 8);
                let spec = LaunchSpec::at_percent_load(service, 20.0 + (op % 40) as f64);
                let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
                match sched.on_arrival_classed(server, id, class) {
                    osml_platform::Placement::Placed => live.push(id),
                    osml_platform::Placement::Deferred { ticket } => {
                        let _ = server.remove(id);
                        sched.on_departure(id);
                        waiting.push(ticket);
                    }
                    osml_platform::Placement::Rejected(_) => {
                        let _ = server.remove(id);
                        sched.on_departure(id);
                    }
                }
            };

        for &op in &ops {
            match op % 4 {
                0 | 1 => {
                    launch_and_submit(&mut sched, &mut server, &mut live, &mut waiting, op);
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(op as usize % live.len());
                        let _ = server.remove(id);
                        sched.on_departure(id);
                    }
                }
                _ => {
                    server.advance(1.0);
                    sched.tick(&mut server);
                    for id in sched.take_shed() {
                        live.retain(|&l| l != id);
                        let _ = server.remove(id);
                        waiting.push(id.0);
                    }
                    while let Some(ticket) = sched.poll_admission() {
                        if !waiting.contains(&ticket) {
                            sched.cancel_ticket(ticket);
                            continue;
                        }
                        waiting.retain(|&w| w != ticket);
                        launch_and_submit(&mut sched, &mut server, &mut live, &mut waiting, ticket as u8);
                    }
                    waiting.retain(|&w| sched.is_waiting(w));
                }
            }
            prop_assert!(layout_invariants_ok(&server), "layout broke after op {op}");
        }

        // Drain the world: every live service departs, every waiting ticket
        // is withdrawn. Nothing may remain allocated.
        for id in live.drain(..) {
            let _ = server.remove(id);
            sched.on_departure(id);
        }
        for ticket in waiting.drain(..) {
            sched.cancel_ticket(ticket);
        }
        prop_assert!(server.apps().is_empty());
        prop_assert_eq!(server.idle_cores().count(), 36, "cores leaked");
        prop_assert_eq!(server.idle_way_count(), 20, "LLC ways leaked");
        prop_assert_eq!(sched.queue_depth(), 0);
    }
}

//! End-to-end integration: train the full model suite from simulator sweeps,
//! drive the OSML controller on co-locations, and check the paper's headline
//! behaviours hold across the crate boundaries.

use osml_baselines::{Oracle, Parties, Unmanaged};
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::{run_colocation, scenario::bootstrap_allocation};
use osml_platform::{Placement, Scheduler, Substrate};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};

fn osml() -> osml_core::OsmlScheduler {
    // Deterministic: `trained_suite` trains from fixed seeds, so every test
    // gets an identical scheduler.
    trained_suite(SuiteConfig::Standard)
}

#[test]
fn osml_places_and_meets_qos_for_a_light_pair() {
    let mut sched = osml();
    let specs = [
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
        LaunchSpec::at_percent_load(Service::Xapian, 30.0),
    ];
    let out = run_colocation(&mut sched, &specs, 40, 0xE2E);
    assert!(out.all_placed, "{out:?}");
    assert!(out.qos_ok, "apps: {:?}", out.apps);
    // Resources must be partitioned, not fully hoarded.
    let total_cores: usize = out.apps.iter().map(|a| a.cores).sum();
    assert!(total_cores <= 36);
}

#[test]
fn osml_beats_unmanaged_on_a_contended_pair() {
    let specs = [
        LaunchSpec::at_percent_load(Service::Moses, 50.0),
        LaunchSpec::at_percent_load(Service::Specjbb, 50.0),
    ];
    let mut um = Unmanaged::new();
    let unmanaged = run_colocation(&mut um, &specs, 30, 7);
    let mut sched = osml();
    let managed = run_colocation(&mut sched, &specs, 60, 7);
    assert!(managed.qos_ok, "OSML should isolate this pair: {:?}", managed.apps);
    assert!(!unmanaged.qos_ok, "unmanaged sharing should fail here: {:?}", unmanaged.apps);
}

#[test]
fn osml_converges_with_far_fewer_actions_than_parties() {
    let specs = [
        LaunchSpec::at_percent_load(Service::ImgDnn, 40.0),
        LaunchSpec::at_percent_load(Service::Xapian, 40.0),
        LaunchSpec::at_percent_load(Service::Moses, 40.0),
    ];
    let mut p = Parties::new();
    let parties = run_colocation(&mut p, &specs, 120, 11);
    let mut s = osml();
    let osml_out = run_colocation(&mut s, &specs, 120, 11);
    assert!(
        osml_out.actions * 2 <= parties.actions.max(1) * 3,
        "OSML ({}) should need far fewer actions than PARTIES ({})",
        osml_out.actions,
        parties.actions
    );
}

#[test]
fn osml_reclaims_surplus_after_a_load_drop() {
    let mut sched = osml();
    let mut server =
        SimServer::new(SimConfig { noise_sigma: 0.0, seed: 13, ..SimConfig::default() });
    let spec = LaunchSpec::at_percent_load(Service::Xapian, 70.0);
    let alloc = bootstrap_allocation(&mut server, spec.threads);
    let id = server.launch(spec, alloc).unwrap();
    server.advance(1.0);
    assert_eq!(sched.on_arrival(&mut server, id), Placement::Placed);
    for _ in 0..20 {
        server.advance(1.0);
        sched.tick(&mut server);
    }
    let busy_cores = server.allocation(id).unwrap().cores.count();

    // Load collapses to 10 %; Algorithm 3 should hand resources back.
    server.set_load(id, Service::Xapian.params().nominal_max_rps() * 0.10).unwrap();
    for _ in 0..60 {
        server.advance(1.0);
        sched.tick(&mut server);
    }
    let idle_cores = server.allocation(id).unwrap().cores.count();
    assert!(
        idle_cores < busy_cores,
        "surplus must be reclaimed: {busy_cores} -> {idle_cores} cores"
    );
    assert!(!server.latency(id).unwrap().violates_qos());
}

#[test]
fn osml_handles_the_unseen_service() {
    // Txt-index is absent from every training sweep; OSML must still place
    // it and keep QoS (the paper's Fig. 14 makes this exact point).
    let mut sched = osml();
    let specs = [
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
        LaunchSpec::at_percent_load(Service::TxtIndex, 30.0),
    ];
    let out = run_colocation(&mut sched, &specs, 60, 17);
    assert!(out.all_placed);
    assert!(out.qos_ok, "{:?}", out.apps);
}

#[test]
fn oracle_upper_bounds_osml_on_a_spot_check() {
    let specs = [
        LaunchSpec::at_percent_load(Service::Masstree, 40.0),
        LaunchSpec::at_percent_load(Service::Xapian, 40.0),
    ];
    // If OSML succeeds, the Oracle must agree the combination is feasible.
    let mut sched = osml();
    let osml_out = run_colocation(&mut sched, &specs, 60, 19);
    if osml_out.success() {
        assert!(
            Oracle::new().best_partition(&specs).is_some(),
            "oracle must not be beaten by an online scheduler"
        );
    }
}

#[test]
fn scheduler_survives_arrivals_and_departures() {
    let mut sched = osml();
    let mut server =
        SimServer::new(SimConfig { noise_sigma: 0.0, seed: 23, ..SimConfig::default() });
    let mut ids = Vec::new();
    for svc in [Service::Moses, Service::Login, Service::Ads] {
        let spec = LaunchSpec::at_percent_load(svc, 25.0);
        let alloc = bootstrap_allocation(&mut server, spec.threads);
        let id = server.launch(spec, alloc).unwrap();
        server.advance(1.0);
        sched.on_arrival(&mut server, id);
        ids.push(id);
    }
    for _ in 0..10 {
        server.advance(1.0);
        sched.tick(&mut server);
    }
    // Middle service departs; the others keep being scheduled sanely.
    server.remove(ids[1]).unwrap();
    sched.on_departure(ids[1]);
    for _ in 0..20 {
        server.advance(1.0);
        sched.tick(&mut server);
    }
    for &id in [&ids[0], &ids[2]] {
        assert!(!server.latency(id).unwrap().violates_qos());
    }
}
